"""Tests for the solver kernels and workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import structured_mesh
from repro.solver import interpolate_new_vertices, jacobi_sweep, residual_norm, vertex_csr
from repro.workloads import MovingShock, plummer_bodies
from repro.workloads.plummer import uniform_bodies


class TestVertexCsr:
    def test_structured_mesh_degrees(self):
        m = structured_mesh(2)
        xadj, adjncy = vertex_csr(m)
        assert len(xadj) == m.num_vertices + 1
        # centre vertex of a 2x2 alternating-diagonal grid touches many
        degs = np.diff(xadj)
        assert degs.min() >= 2
        assert degs.sum() == len(adjncy)

    def test_symmetry(self):
        m = structured_mesh(3)
        xadj, adjncy = vertex_csr(m)
        for v in range(m.num_vertices):
            for u in adjncy[xadj[v] : xadj[v + 1]]:
                assert v in adjncy[xadj[u] : xadj[u + 1]]


class TestJacobi:
    def test_constant_field_is_fixed_point_of_mean(self):
        m = structured_mesh(3)
        xadj, adjncy = vertex_csr(m)
        u = np.full(m.num_vertices, 3.0)
        rows = np.arange(m.num_vertices)
        forcing = np.full(m.num_vertices, 3.0)
        new = jacobi_sweep(u, xadj, adjncy, rows, forcing, omega=0.7)
        assert np.allclose(new, 3.0)

    def test_rows_subset_with_local_csr(self):
        m = structured_mesh(3)
        xadj, adjncy = vertex_csr(m)
        u = np.arange(m.num_vertices, dtype=float)
        rows = np.array([2, 5])
        local_xadj = np.array(
            [0, xadj[3] - xadj[2], (xadj[3] - xadj[2]) + (xadj[6] - xadj[5])]
        )
        local_adj = np.concatenate([adjncy[xadj[2] : xadj[3]], adjncy[xadj[5] : xadj[6]]])
        new = jacobi_sweep(u, local_xadj, local_adj, rows, np.zeros(2))
        assert new.shape == (2,)

    def test_bad_csr_length(self):
        with pytest.raises(ValueError):
            jacobi_sweep(np.zeros(4), np.array([0, 1]), np.array([1]), np.array([0, 1]), np.zeros(2))

    def test_empty_rows(self):
        out = jacobi_sweep(np.zeros(4), np.array([0]), np.zeros(0, dtype=int), np.zeros(0, dtype=int), np.zeros(0))
        assert out.shape == (0,)

    def test_converges_toward_forcing(self):
        m = structured_mesh(4)
        xadj, adjncy = vertex_csr(m)
        coords = m.verts_array()
        forcing = np.tanh((coords[:, 0] - 0.5) / 0.1)
        u = np.zeros(m.num_vertices)
        rows = np.arange(m.num_vertices)
        for _ in range(50):
            u[rows] = jacobi_sweep(u, xadj, adjncy, rows, forcing)
        err = np.abs(u - forcing).mean()
        assert err < 0.2

    def test_residual_norm(self):
        assert residual_norm(np.array([3.0, 4.0]), np.zeros(2)) == pytest.approx(5.0)
        assert residual_norm(np.ones(3), np.ones(3)) == 0.0


class TestInterpolation:
    def test_midpoints_get_averages(self):
        u = np.array([1.0, 3.0])
        out = interpolate_new_vertices(u, [(2, 0, 1)], 3)
        assert out[2] == 2.0

    def test_chained_triples(self):
        u = np.array([0.0, 4.0])
        out = interpolate_new_vertices(u, [(2, 0, 1), (3, 0, 2)], 4)
        assert out[2] == 2.0 and out[3] == 1.0

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(st.floats(-10, 10), min_size=2, max_size=10))
    def test_property_interp_within_range(self, values):
        """Invariant: interpolated values stay within [min, max] of inputs."""
        u = np.asarray(values)
        n = len(u)
        triples = [(n, 0, n - 1), (n + 1, 0, n)]
        out = interpolate_new_vertices(u, triples, n + 2)
        assert out[n:].min() >= u.min() - 1e-12
        assert out[n:].max() <= u.max() + 1e-12


class TestShockWorkload:
    def test_front_moves(self):
        s = MovingShock(x0=0.1, speed=0.2)
        assert s.front(0) == pytest.approx(0.1)
        assert s.front(3) == pytest.approx(0.7)

    def test_field_is_step_across_front(self):
        s = MovingShock()
        left = s.field(0, np.array([[0.0, 0.5]]))
        right = s.field(0, np.array([[1.0, 0.5]]))
        assert left[0] < -0.9 and right[0] > 0.9

    def test_marks_hug_front(self):
        s = MovingShock(x0=0.5, band=0.05)
        m = structured_mesh(8)
        verts = m.verts_array()
        for a, b in s.marks(m, 0):
            mid = (verts[a][0] + verts[b][0]) / 2
            assert abs(mid - 0.5) <= 0.051

    def test_coarsen_candidates_far_from_front(self):
        s = MovingShock(x0=0.1, coarsen_distance=0.3)
        m = structured_mesh(8)
        verts = m.verts_array()
        for t in s.coarsen_candidates(m, 0):
            cx = verts[list(m.tri_verts(t))][:, 0].mean()
            assert abs(cx - 0.1) > 0.3


class TestPlummer:
    def test_deterministic(self):
        p1, v1, m1 = plummer_bodies(100, seed=4)
        p2, v2, m2 = plummer_bodies(100, seed=4)
        assert np.array_equal(p1, p2) and np.array_equal(v1, v2)

    def test_inside_unit_square(self):
        pos, _, _ = plummer_bodies(500, seed=1)
        assert pos.min() >= 0.0 and pos.max() <= 1.0

    def test_centrally_condensed(self):
        pos, _, _ = plummer_bodies(1000, seed=0)
        r = np.hypot(pos[:, 0] - 0.5, pos[:, 1] - 0.5)
        # more than half the bodies inside one scale radius-ish
        assert (r < 0.2).mean() > 0.5

    def test_mass_normalised(self):
        _, _, mass = plummer_bodies(64)
        assert mass.sum() == pytest.approx(1.0)

    def test_uniform_spreads(self):
        pos, _, _ = uniform_bodies(1000, seed=0)
        r = np.hypot(pos[:, 0] - 0.5, pos[:, 1] - 0.5)
        assert (r < 0.2).mean() < 0.3

    def test_bad_n(self):
        with pytest.raises(ValueError):
            plummer_bodies(0)
