"""Determinism properties: the whole simulation stack must be exactly
reproducible — identical runs give identical virtual times, statistics,
and results. Hypothesis drives randomized programs through the engine and
the runtimes to check it."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Machine, MachineConfig
from repro.models.registry import run_program
from repro.sim import Delay, Engine


@settings(max_examples=50, deadline=None)
@given(
    delays=st.lists(
        st.lists(st.floats(0.0, 100.0), min_size=1, max_size=8),
        min_size=1,
        max_size=6,
    )
)
def test_engine_runs_are_identical(delays):
    """Same process set → same completion order and final time."""

    def run_once():
        eng = Engine()
        order = []

        def prog(tag, ds):
            for d in ds:
                yield Delay(d)
            order.append(tag)

        for tag, ds in enumerate(delays):
            eng.spawn(prog(tag, ds))
        eng.run()
        return eng.now, order

    t1, o1 = run_once()
    t2, o2 = run_once()
    assert t1 == t2
    assert o1 == o2


@settings(max_examples=25, deadline=None)
@given(
    nprocs=st.integers(2, 8),
    sizes=st.lists(st.integers(1, 2000), min_size=1, max_size=5),
    seed=st.integers(0, 100),
)
def test_mpi_runs_are_identical(nprocs, sizes, seed):
    """Randomized ring programs produce bit-identical times and stats."""

    def program(ctx):
        rng = np.random.default_rng(seed + ctx.rank)
        for i, size in enumerate(sizes):
            data = rng.standard_normal(size)
            got = yield from ctx.sendrecv(
                data, (ctx.rank + 1) % ctx.nprocs, (ctx.rank - 1) % ctx.nprocs,
                sendtag=i, recvtag=i,
            )
            yield from ctx.compute(float(abs(got[0])) * 10)
        total = yield from ctx.allreduce(ctx.rank)
        return total

    a = run_program("mpi", program, nprocs)
    b = run_program("mpi", program, nprocs)
    assert a.elapsed_ns == b.elapsed_ns
    assert a.rank_results == b.rank_results
    assert a.stats.summary() == b.stats.summary()


@settings(max_examples=15, deadline=None)
@given(nprocs=st.integers(2, 6), n=st.integers(64, 256))
def test_sas_runs_are_identical(nprocs, n):
    def program(ctx):
        from repro.models.sas.parallel import block_partition

        x = ctx.shalloc("x", (n,), np.float64)
        lo, hi = block_partition(n, ctx.nprocs, ctx.rank)
        yield from ctx.swrite(x, np.arange(hi - lo, dtype=float), lo=lo)
        yield from ctx.barrier()
        vals = yield from ctx.sread(x)
        total = yield from ctx.reduce_all(float(vals.sum()))
        return total

    a = run_program("sas", program, nprocs)
    b = run_program("sas", program, nprocs)
    assert a.elapsed_ns == b.elapsed_ns
    assert a.rank_results == b.rank_results


def test_full_app_run_is_identical():
    from repro.apps.adapt import ADAPT_PROGRAMS, AdaptConfig, build_script

    cfg = AdaptConfig(mesh_n=6, phases=2, solver_iters=3)
    script = build_script(cfg, 4)
    a = run_program("shmem", ADAPT_PROGRAMS["shmem"], 4, script)
    b = run_program("shmem", ADAPT_PROGRAMS["shmem"], 4, script)
    assert a.elapsed_ns == b.elapsed_ns
    assert a.stats.summary() == b.stats.summary()
    assert a.phase_ns == b.phase_ns


@pytest.mark.parametrize("model", ["mpi", "shmem", "sas"])
@pytest.mark.parametrize("nprocs", [1, 4, 8])
def test_tracing_does_not_perturb_simulation(model, nprocs):
    """Event tracing must be pure observation: simulated time and results
    are bit-identical with tracing on or off."""
    from repro.apps.adapt import AdaptConfig
    from repro.harness import run_app

    cfg = AdaptConfig(mesh_n=6, phases=2, solver_iters=3)
    base = run_app("adapt", model, nprocs, cfg)
    traced = run_app("adapt", model, nprocs, cfg, trace=True)
    assert traced.elapsed_ns == base.elapsed_ns
    assert traced.rank_results == base.rank_results
    assert traced.stats.summary() == base.stats.summary()
    assert base.events is None
    assert traced.events, "traced run recorded no events"
