"""Unit tests for the memory system and page-placement policies."""

import pytest

from repro.machine.config import MachineConfig
from repro.machine.memory import MemorySystem


def cfg(nprocs=8):
    return MachineConfig(nprocs=nprocs)


def test_alloc_is_line_aligned_and_disjoint():
    mem = MemorySystem(cfg())
    a = mem.alloc(100)
    b = mem.alloc(100)
    assert a % 128 == 0 and b % 128 == 0
    assert b >= a + 100


def test_alloc_page_aligned():
    mem = MemorySystem(cfg())
    a = mem.alloc(10, page_aligned=True)
    assert a % cfg().page_bytes == 0


def test_alloc_rejects_nonpositive():
    mem = MemorySystem(cfg())
    with pytest.raises(ValueError):
        mem.alloc(0)


def test_first_touch_assigns_accessor_node():
    mem = MemorySystem(cfg(), policy="first-touch")
    addr = mem.alloc(8, page_aligned=True)
    assert mem.home_of(addr, accessor_node=2) == 2
    # sticky afterwards
    assert mem.home_of(addr, accessor_node=0) == 2


def test_round_robin_interleaves():
    c = cfg()
    mem = MemorySystem(c, policy="round-robin")
    addr = mem.alloc(4 * c.page_bytes, page_aligned=True)
    homes = [mem.home_of(addr + i * c.page_bytes, accessor_node=0) for i in range(4)]
    assert homes == [(mem.page_of(addr) + i) % c.nnodes for i in range(4)]
    assert len(set(homes)) == min(4, c.nnodes)


def test_fixed_policy_and_suffix():
    mem = MemorySystem(cfg(), policy="fixed:3")
    addr = mem.alloc(8)
    assert mem.home_of(addr, accessor_node=0) == 3


def test_fixed_node_out_of_range():
    with pytest.raises(ValueError):
        MemorySystem(cfg(), policy="fixed:99")


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        MemorySystem(cfg(), policy="chaotic")


def test_explicit_place_overrides_policy():
    c = cfg()
    mem = MemorySystem(c, policy="fixed:0")
    addr = mem.alloc(2 * c.page_bytes, page_aligned=True)
    mem.place(addr, 2 * c.page_bytes, node=1)
    assert mem.home_of(addr, accessor_node=0) == 1
    assert mem.home_of(addr + c.page_bytes, accessor_node=0) == 1


def test_place_rejects_bad_node():
    c = cfg()
    mem = MemorySystem(c)
    with pytest.raises(ValueError):
        mem.place(0, 8, node=c.nnodes)


def test_peek_home_does_not_place():
    mem = MemorySystem(cfg())
    addr = mem.alloc(8, page_aligned=True)
    assert mem.peek_home(addr) is None
    mem.home_of(addr, accessor_node=1)
    assert mem.peek_home(addr) == 1


def test_placement_histogram():
    c = cfg()
    mem = MemorySystem(c, policy="round-robin")
    addr = mem.alloc(c.nnodes * c.page_bytes, page_aligned=True)
    for i in range(c.nnodes):
        mem.home_of(addr + i * c.page_bytes, accessor_node=0)
    hist = mem.placement_histogram()
    assert sum(hist.values()) == c.nnodes
    assert all(v == 1 for v in hist.values())


def test_home_of_line_consistent_with_home_of():
    c = cfg()
    mem = MemorySystem(c, policy="round-robin")
    addr = mem.alloc(c.page_bytes, page_aligned=True)
    line = addr // c.line_bytes
    assert mem.home_of_line(line, c.line_bytes, 0) == mem.home_of(addr, 0)
