"""Tests for the partitioning substrate: graph, RCB, spectral, multilevel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import structured_mesh, delaunay_mesh
from repro.partition import (
    Graph,
    PARTITIONERS,
    edge_cut,
    imbalance,
    mesh_dual_graph,
    multilevel,
    partition_summary,
    rcb,
    spectral,
)
from repro.partition.metrics import part_weights
from repro.partition.multilevel import coarsen_graph, fm_refine, heavy_edge_matching


def path_graph(n: int) -> Graph:
    adj = {v: sorted({u for u in (v - 1, v + 1) if 0 <= u < n}) for v in range(n)}
    coords = np.column_stack([np.arange(n, dtype=float), np.zeros(n)])
    return Graph.from_adjacency(adj, coords=coords)


class TestGraph:
    def test_csr_validation(self):
        with pytest.raises(ValueError):
            Graph(np.array([0, 2]), np.array([1]))  # inconsistent
        with pytest.raises(ValueError):
            Graph(np.array([0, 1, 0]), np.array([0]))  # decreasing

    def test_basic_queries(self):
        g = path_graph(5)
        assert g.num_vertices == 5
        assert g.num_edges == 4
        assert g.degree(0) == 1
        assert g.degree(2) == 2
        assert list(g.neighbors(2)) == [1, 3]
        assert g.total_weight() == 5.0

    def test_subgraph(self):
        g = path_graph(6)
        sub, orig = g.subgraph(np.array([1, 2, 3]))
        assert sub.num_vertices == 3
        assert sub.num_edges == 2  # 1-2, 2-3 survive; 0-1 and 3-4 cut
        assert list(orig) == [1, 2, 3]

    def test_mesh_dual_graph_coords(self):
        m = structured_mesh(3)
        g, tids = mesh_dual_graph(m)
        assert g.num_vertices == m.num_triangles
        assert g.coords.shape == (len(tids), 2)
        assert np.all((g.coords >= 0) & (g.coords <= 1))

    def test_mesh_dual_graph_weights(self):
        m = structured_mesh(2)
        tids = m.alive_tris()
        g, order = mesh_dual_graph(m, weights={tids[0]: 5.0})
        assert g.vwgt[order.index(tids[0])] == 5.0


class TestMetrics:
    def test_edge_cut_path(self):
        g = path_graph(4)
        part = np.array([0, 0, 1, 1])
        assert edge_cut(g, part) == 1.0

    def test_imbalance_perfect_and_skewed(self):
        g = path_graph(4)
        assert imbalance(g, np.array([0, 0, 1, 1]), 2) == 1.0
        assert imbalance(g, np.array([0, 0, 0, 1]), 2) == 1.5

    def test_part_weights(self):
        g = path_graph(5)
        w = part_weights(g, np.array([0, 1, 1, 2, 2]), 3)
        assert list(w) == [1.0, 2.0, 2.0]

    def test_summary(self):
        g = path_graph(8)
        s = partition_summary(g, rcb(g, 2), 2)
        assert s.nparts == 2
        assert s.edge_cut == 1.0
        assert s.imbalance == 1.0


@pytest.mark.parametrize("name", sorted(PARTITIONERS))
class TestAllPartitioners:
    @pytest.mark.parametrize("nparts", (1, 2, 3, 4, 7, 8))
    def test_valid_partition(self, name, nparts):
        m = structured_mesh(6)
        g, _ = mesh_dual_graph(m)
        part = PARTITIONERS[name](g, nparts)
        assert len(part) == g.num_vertices
        assert set(np.unique(part)) == set(range(nparts))
        assert imbalance(g, part, nparts) < 1.35

    def test_nparts_one_trivial(self, name):
        g = path_graph(10)
        assert np.all(PARTITIONERS[name](g, 1) == 0)

    def test_bad_nparts(self, name):
        g = path_graph(4)
        with pytest.raises(ValueError):
            PARTITIONERS[name](g, 0)

    def test_deterministic(self, name):
        m = delaunay_mesh(60, seed=2)
        g, _ = mesh_dual_graph(m)
        p1 = PARTITIONERS[name](g, 4)
        p2 = PARTITIONERS[name](g, 4)
        assert np.array_equal(p1, p2)


class TestRcb:
    def test_requires_coords(self):
        g = Graph.from_adjacency({0: [1], 1: [0]})
        with pytest.raises(ValueError, match="coordinates"):
            rcb(g, 2)

    def test_splits_along_long_axis(self):
        g = path_graph(16)  # all on a horizontal line
        part = rcb(g, 2)
        # left half one part, right half the other
        assert len(set(part[:8])) == 1 and len(set(part[8:])) == 1
        assert part[0] != part[-1]

    def test_weighted_median(self):
        adj = {v: [] for v in range(4)}
        coords = np.column_stack([np.arange(4.0), np.zeros(4)])
        g = Graph.from_adjacency(adj, vwgt=np.array([10.0, 1.0, 1.0, 1.0]), coords=coords)
        part = rcb(g, 2)
        # the heavy vertex should sit alone-ish: balance by weight not count
        w = part_weights(g, part, 2)
        assert max(w) <= 10.0


class TestSpectral:
    def test_cut_quality_on_grid(self):
        m = structured_mesh(6)
        g, _ = mesh_dual_graph(m)
        cut = edge_cut(g, spectral(g, 2))
        # a 6x6 grid dual bisects with cut ~ O(side); anything < 20 is sane
        assert cut <= 20

    def test_disconnected_graph_handled(self):
        adj = {0: [1], 1: [0], 2: [3], 3: [2]}
        coords = np.array([[0.0, 0], [1, 0], [10, 0], [11, 0]])
        g = Graph.from_adjacency(adj, coords=coords)
        part = spectral(g, 2)
        assert set(np.unique(part)) == {0, 1}


class TestMultilevelInternals:
    def test_matching_is_symmetric(self):
        m = structured_mesh(4)
        g, _ = mesh_dual_graph(m)
        match = heavy_edge_matching(g, seed=1)
        for v, u in enumerate(match):
            assert match[u] == v

    def test_coarsening_preserves_weight(self):
        m = structured_mesh(4)
        g, _ = mesh_dual_graph(m)
        coarse, cmap = coarsen_graph(g, heavy_edge_matching(g))
        assert coarse.total_weight() == g.total_weight()
        assert coarse.num_vertices < g.num_vertices
        assert len(cmap) == g.num_vertices

    def test_fm_improves_or_keeps_cut(self):
        m = structured_mesh(6)
        g, _ = mesh_dual_graph(m)
        rng = np.random.default_rng(0)
        part = rng.integers(0, 2, g.num_vertices)
        before = edge_cut(g, part)
        half = g.total_weight() / 2
        fm_refine(g, part, (half, half))
        assert edge_cut(g, part) <= before

    def test_multilevel_beats_random(self):
        m = delaunay_mesh(150, seed=5)
        g, _ = mesh_dual_graph(m)
        rng = np.random.default_rng(1)
        random_cut = edge_cut(g, rng.integers(0, 4, g.num_vertices), )
        ml_cut = edge_cut(g, multilevel(g, 4))
        assert ml_cut < random_cut / 2


@settings(max_examples=15, deadline=None)
@given(
    side=st.integers(min_value=3, max_value=8),
    nparts=st.integers(min_value=2, max_value=6),
)
def test_property_partitions_cover_and_balance(side, nparts):
    """Invariant: every partitioner labels every vertex, uses every part,
    and stays within a loose balance bound."""
    m = structured_mesh(side)
    g, _ = mesh_dual_graph(m)
    for fn in PARTITIONERS.values():
        part = fn(g, nparts)
        assert len(part) == g.num_vertices
        assert set(np.unique(part)) == set(range(nparts))
        assert imbalance(g, part, nparts) <= 1.5
