"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import AllOf, AnyOf, Deadlock, Delay, Engine, SimError
from repro.sim.engine import WaitEvent


def test_delay_advances_time():
    eng = Engine()

    def prog():
        yield Delay(5)
        yield Delay(7)
        return "done"

    proc = eng.spawn(prog())
    eng.run()
    assert eng.now == 12
    assert proc.result == "done"
    assert proc.finished


def test_zero_delay_allowed():
    eng = Engine()

    def prog():
        yield Delay(0)
        return 1

    proc = eng.spawn(prog())
    eng.run()
    assert eng.now == 0
    assert proc.result == 1


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Delay(-1)


def test_fifo_tie_breaking_is_deterministic():
    order = []

    def prog(tag):
        yield Delay(10)
        order.append(tag)

    eng = Engine()
    for tag in range(5):
        eng.spawn(prog(tag))
    eng.run()
    assert order == [0, 1, 2, 3, 4]


def test_event_carries_value():
    eng = Engine()
    ev = eng.event("x")

    def producer():
        yield Delay(3)
        ev.fire(99)

    def consumer():
        value = yield WaitEvent(ev)
        return value

    eng.spawn(producer())
    cons = eng.spawn(consumer())
    eng.run()
    assert cons.result == 99
    assert eng.now == 3


def test_event_already_fired_resumes_immediately():
    eng = Engine()
    ev = eng.event("pre")
    ev.fire("early")

    def consumer():
        value = yield WaitEvent(ev)
        return value

    cons = eng.spawn(consumer())
    eng.run()
    assert cons.result == "early"


def test_event_double_fire_is_error():
    eng = Engine()
    ev = eng.event("once")
    ev.fire()
    with pytest.raises(SimError):
        ev.fire()


def test_reusable_event_refires():
    eng = Engine()
    ev = eng.event("re", reusable=True)
    seen = []

    def consumer():
        for _ in range(2):
            value = yield WaitEvent(ev)
            seen.append(value)

    def producer():
        yield Delay(1)
        ev.fire("a")
        yield Delay(1)
        ev.fire("b")

    eng.spawn(consumer())
    eng.spawn(producer())
    eng.run()
    assert seen == ["a", "b"]


def test_yielding_raw_event_works():
    eng = Engine()
    ev = eng.event()

    def consumer():
        value = yield ev
        return value

    def producer():
        yield Delay(2)
        ev.fire(7)

    cons = eng.spawn(consumer())
    eng.spawn(producer())
    eng.run()
    assert cons.result == 7


def test_all_of_waits_for_every_event():
    eng = Engine()
    evs = [eng.event(str(i)) for i in range(3)]

    def firer(i, t):
        yield Delay(t)
        evs[i].fire(i * 10)

    def waiter():
        values = yield AllOf(evs)
        return values

    for i, t in enumerate((5, 1, 3)):
        eng.spawn(firer(i, t))
    w = eng.spawn(waiter())
    eng.run()
    assert w.result == [0, 10, 20]
    assert eng.now == 5


def test_all_of_empty_and_prefired():
    eng = Engine()
    evs = [eng.event(str(i)) for i in range(2)]
    for i, ev in enumerate(evs):
        ev.fire(i)

    def waiter():
        values = yield AllOf(evs)
        return values

    w = eng.spawn(waiter())
    eng.run()
    assert w.result == [0, 1]


def test_any_of_returns_first():
    eng = Engine()
    evs = [eng.event(str(i)) for i in range(3)]

    def firer(i, t):
        yield Delay(t)
        evs[i].fire(f"v{i}")

    def waiter():
        idx, value = yield AnyOf(evs)
        return idx, value

    for i, t in enumerate((5, 2, 9)):
        eng.spawn(firer(i, t))
    w = eng.spawn(waiter())
    eng.run()
    assert w.result == (1, "v1")


def test_any_of_requires_events():
    with pytest.raises(ValueError):
        AnyOf([])


def test_deadlock_detected():
    eng = Engine()
    ev = eng.event("never")

    def stuck():
        yield WaitEvent(ev)

    eng.spawn(stuck())
    with pytest.raises(Deadlock):
        eng.run()


def test_process_exception_propagates():
    eng = Engine()

    def bad():
        yield Delay(1)
        raise RuntimeError("boom")

    eng.spawn(bad())
    with pytest.raises(RuntimeError, match="boom"):
        eng.run()


def test_unsupported_yield_raises():
    eng = Engine()

    def bad():
        yield 42

    eng.spawn(bad())
    with pytest.raises(SimError, match="unsupported request"):
        eng.run()


def test_spawn_requires_generator():
    eng = Engine()
    with pytest.raises(TypeError):
        eng.spawn(lambda: None)


def test_run_until_stops_early():
    eng = Engine()

    def prog():
        yield Delay(100)

    eng.spawn(prog())
    eng.run(until=50)
    assert eng.now == 50


def test_end_event_fires_with_result():
    eng = Engine()

    def prog():
        yield Delay(1)
        return "finished"

    proc = eng.spawn(prog())

    def watcher():
        value = yield WaitEvent(proc.end_event)
        return value

    w = eng.spawn(watcher())
    eng.run()
    assert w.result == "finished"


def test_nested_yield_from_composition():
    eng = Engine()

    def inner():
        yield Delay(4)
        return 2

    def outer():
        a = yield from inner()
        b = yield from inner()
        return a + b

    proc = eng.spawn(outer())
    eng.run()
    assert proc.result == 4
    assert eng.now == 8


def test_any_of_losing_watchers_do_not_deadlock():
    """Internal any-of watcher helpers must not count toward liveness.

    After an ``AnyOf`` race is decided, the watchers for the *losing* events
    stay blocked forever.  If those helpers counted as live processes, the
    run loop would raise :class:`Deadlock` even though every user process
    finished — the regression this pins down.
    """
    eng = Engine()
    evs = [eng.event(name=f"e{i}") for i in range(3)]

    def racer():
        idx, value = yield AnyOf(evs)
        return idx

    def firer():
        yield Delay(5)
        evs[1].fire("won")
        # evs[0] and evs[2] are never fired: their watchers stay blocked

    proc = eng.spawn(racer())
    eng.spawn(firer())
    eng.run()  # must complete without Deadlock
    assert proc.result == 1
    assert eng.now == 5


def test_sequential_any_of_races_accumulate_stale_watchers():
    """Many decided races leave many dead watchers; still no false deadlock."""
    eng = Engine()

    def driver():
        for i in range(10):
            winner = eng.event(name=f"win{i}")
            loser = eng.event(name=f"lose{i}")
            eng.spawn(_fire_later(winner))
            idx, _ = yield AnyOf([loser, winner])
            assert idx == 1
        return "done"

    def _fire_later(ev):
        yield Delay(1)
        ev.fire()

    proc = eng.spawn(driver())
    eng.run()
    assert proc.result == "done"


# -- PR 6: batched engine core ------------------------------------------------


def test_delay_rejects_non_finite():
    for bad in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(ValueError):
            Delay(bad)


def test_schedule_rejects_non_finite_wake():
    eng = Engine()
    with pytest.raises(ValueError, match="non-finite wake"):
        eng._schedule(float("inf"), None, None)
    with pytest.raises(ValueError, match="non-finite wake"):
        eng._schedule(float("nan"), None, None)


@pytest.mark.parametrize("batch", [True, False])
def test_run_until_boundary_is_inclusive(batch):
    """An event scheduled exactly at ``until`` fires; later ones stay queued."""
    eng = Engine(batch=batch)
    fired = []

    def prog():
        yield Delay(10)
        fired.append("at-10")
        yield Delay(5)
        fired.append("at-15")

    eng.spawn(prog())
    eng.run(until=10)
    assert fired == ["at-10"]
    assert eng.now == 10
    eng.run()
    assert fired == ["at-10", "at-15"]
    assert eng.now == 15


@pytest.mark.parametrize("batch", [True, False])
def test_run_until_advances_time_without_events(batch):
    eng = Engine(batch=batch)

    def prog():
        yield Delay(100)

    eng.spawn(prog())
    eng.run(until=40)  # nothing fires at 40, but time reaches the boundary
    assert eng.now == 40
    eng.run(until=100)
    assert eng.now == 100


@pytest.mark.parametrize("batch", [True, False])
def test_run_until_in_the_past_is_a_noop(batch):
    eng = Engine(batch=batch)

    def prog():
        yield Delay(20)
        return "ok"

    proc = eng.spawn(prog())
    eng.run(until=30)
    assert eng.now == 20 or eng.now == 30  # queue drained at 20, clamp <= 30
    t = eng.run(until=5)  # must not move time backwards or re-fire anything
    assert t == eng.now
    assert proc.result == "ok"


@pytest.mark.parametrize("batch", [True, False])
def test_run_until_never_refires_boundary_events(batch):
    """Events at the boundary fire exactly once across successive runs."""
    eng = Engine(batch=batch)
    hits = []

    def prog():
        yield Delay(10)
        hits.append(1)

    eng.spawn(prog())
    eng.run(until=10)
    eng.run(until=10)
    eng.run()
    assert hits == [1]


def test_hop_requires_batched_engine():
    from repro.sim.engine import Hop

    eng = Engine(batch=False)

    def prog():
        yield Hop(5.0, lambda proc: None, ())

    eng.spawn(prog())
    with pytest.raises(SimError, match="batch_enabled"):
        eng.run()


def test_hop_rejects_bad_delay():
    from repro.sim.engine import Hop

    with pytest.raises(ValueError):
        Hop(-1.0, lambda proc: None, ())
    with pytest.raises(ValueError):
        Hop(float("nan"), lambda proc: None, ())


def test_hop_runs_callback_and_callback_resumes_process():
    from repro.sim.engine import Hop

    eng = Engine(batch=True)
    log = []

    def leg(proc, tag):
        log.append((tag, eng.now))
        eng._schedule(3.0, proc, "resumed")

    def prog():
        value = yield Hop(5.0, leg, ("hop",))
        log.append((value, eng.now))

    eng.spawn(prog())
    eng.run()
    assert log == [("hop", 5.0), ("resumed", 8.0)]


def test_call_after_requires_batched_engine():
    eng = Engine(batch=False)
    with pytest.raises(SimError, match="batched engine"):
        eng.call_after(1.0, lambda: None)


def test_call_after_interleaves_fifo_with_process_wakes():
    eng = Engine(batch=True)
    order = []

    def prog(tag):
        yield Delay(10)
        order.append(tag)

    eng.spawn(prog("a"))
    eng.call_after(10.0, order.append, ("timer",))
    eng.spawn(prog("b"))
    eng.run()
    # seq order: the timer was scheduled at t=0 before either process had
    # reached its Delay (spawn only queues the start entry), so it fires
    # first in the t=10 cohort
    assert order == ["timer", "a", "b"]


def test_adopt_runs_first_step_immediately():
    eng = Engine(batch=True)
    steps = []

    def adoptee():
        steps.append(("start", eng.now))
        yield Delay(2)
        steps.append(("end", eng.now))
        return "adopted"

    def driver():
        yield Delay(5)
        proc = eng.adopt(adoptee())
        # adopt ran the first step synchronously: already inside the generator
        assert steps == [("start", 5.0)]
        value = yield WaitEvent(proc.end_event)
        return value

    d = eng.spawn(driver())
    eng.run()
    assert d.result == "adopted"
    assert steps == [("start", 5.0), ("end", 7.0)]


def test_batched_and_scalar_timelines_identical():
    """The same process soup produces the same (now, order) under both loops."""

    def workload(eng, order, tag, delays):
        def prog():
            for d in delays:
                yield Delay(d)
                order.append((tag, eng.now))

        return prog()

    results = {}
    for batch in (True, False):
        eng = Engine(batch=batch)
        order = []
        for tag, delays in (("a", [3, 0, 4]), ("b", [3, 4]), ("c", [7, 0, 0])):
            eng.spawn(workload(eng, order, tag, delays))
        eng.run()
        results[batch] = (eng.now, order)
    assert results[True] == results[False]


def test_engine_counters_report_batched_activity():
    eng = Engine(batch=True)

    def prog():
        yield Delay(1)
        yield Delay(0)

    eng.spawn(prog())
    eng.run()
    c = eng.counters()
    assert c["batch"] is True
    assert c["events"] > 0
    assert c["zero_lane_hits"] >= 1


# -- PR 6: AnyOf losing watchers under the cohort drain -----------------------


@pytest.mark.parametrize("batch", [True, False])
def test_any_of_late_loser_does_not_resurrect_process(batch):
    """A losing event firing *after* the race must not resume the racer."""
    eng = Engine(batch=batch)
    winner = eng.event("winner")
    loser = eng.event("loser")
    resumes = []

    def racer():
        idx, value = yield AnyOf([winner, loser])
        resumes.append((idx, value, eng.now))
        yield Delay(10)
        resumes.append(("after", eng.now))
        return "done"

    def firer():
        yield Delay(1)
        winner.fire("w")
        yield Delay(2)
        loser.fire("l")  # decided race: must be swallowed by the dead watcher

    proc = eng.spawn(racer())
    eng.spawn(firer())
    eng.run()
    assert proc.result == "done"
    assert resumes == [(0, "w", 1.0), ("after", 11.0)]


@pytest.mark.parametrize("batch", [True, False])
def test_any_of_same_instant_cohort_picks_lowest_index(batch):
    """Two events firing in one same-timestamp cohort: first fire wins,
    and the loser's watcher dies without a second resume."""
    eng = Engine(batch=batch)
    evs = [eng.event(f"e{i}") for i in range(2)]

    def firer(i):
        yield Delay(5)
        evs[i].fire(f"v{i}")

    def racer():
        idx, value = yield AnyOf(evs)
        return idx, value, eng.now

    # both fire at t=5 in one cohort; spawn order fixes the winner
    eng.spawn(firer(0))
    eng.spawn(firer(1))
    proc = eng.spawn(racer())
    eng.run()
    assert proc.result == (0, "v0", 5.0)


@pytest.mark.parametrize("batch", [True, False])
def test_nested_any_of_inside_all_of_under_cohort_drain(batch):
    """AllOf over end-events of AnyOf racers, all deciding in one cohort."""
    eng = Engine(batch=batch)
    n = 4
    winners = [eng.event(f"w{i}") for i in range(n)]
    losers = [eng.event(f"l{i}") for i in range(n)]

    def racer(i):
        idx, value = yield AnyOf([losers[i], winners[i]])
        return (i, idx, value)

    def firer():
        yield Delay(3)
        for i in range(n):  # every race decides in the same cohort
            winners[i].fire(f"win{i}")
        yield Delay(1)
        losers[0].fire("late")  # and one loser fires after the fact

    racers = [eng.spawn(racer(i)) for i in range(n)]

    def collector():
        values = yield AllOf([r.end_event for r in racers])
        return values

    c = eng.spawn(collector())
    eng.spawn(firer())
    eng.run()
    assert c.result == [(i, 1, f"win{i}") for i in range(n)]
