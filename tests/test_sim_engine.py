"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import AllOf, AnyOf, Deadlock, Delay, Engine, SimError
from repro.sim.engine import WaitEvent


def test_delay_advances_time():
    eng = Engine()

    def prog():
        yield Delay(5)
        yield Delay(7)
        return "done"

    proc = eng.spawn(prog())
    eng.run()
    assert eng.now == 12
    assert proc.result == "done"
    assert proc.finished


def test_zero_delay_allowed():
    eng = Engine()

    def prog():
        yield Delay(0)
        return 1

    proc = eng.spawn(prog())
    eng.run()
    assert eng.now == 0
    assert proc.result == 1


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Delay(-1)


def test_fifo_tie_breaking_is_deterministic():
    order = []

    def prog(tag):
        yield Delay(10)
        order.append(tag)

    eng = Engine()
    for tag in range(5):
        eng.spawn(prog(tag))
    eng.run()
    assert order == [0, 1, 2, 3, 4]


def test_event_carries_value():
    eng = Engine()
    ev = eng.event("x")

    def producer():
        yield Delay(3)
        ev.fire(99)

    def consumer():
        value = yield WaitEvent(ev)
        return value

    eng.spawn(producer())
    cons = eng.spawn(consumer())
    eng.run()
    assert cons.result == 99
    assert eng.now == 3


def test_event_already_fired_resumes_immediately():
    eng = Engine()
    ev = eng.event("pre")
    ev.fire("early")

    def consumer():
        value = yield WaitEvent(ev)
        return value

    cons = eng.spawn(consumer())
    eng.run()
    assert cons.result == "early"


def test_event_double_fire_is_error():
    eng = Engine()
    ev = eng.event("once")
    ev.fire()
    with pytest.raises(SimError):
        ev.fire()


def test_reusable_event_refires():
    eng = Engine()
    ev = eng.event("re", reusable=True)
    seen = []

    def consumer():
        for _ in range(2):
            value = yield WaitEvent(ev)
            seen.append(value)

    def producer():
        yield Delay(1)
        ev.fire("a")
        yield Delay(1)
        ev.fire("b")

    eng.spawn(consumer())
    eng.spawn(producer())
    eng.run()
    assert seen == ["a", "b"]


def test_yielding_raw_event_works():
    eng = Engine()
    ev = eng.event()

    def consumer():
        value = yield ev
        return value

    def producer():
        yield Delay(2)
        ev.fire(7)

    cons = eng.spawn(consumer())
    eng.spawn(producer())
    eng.run()
    assert cons.result == 7


def test_all_of_waits_for_every_event():
    eng = Engine()
    evs = [eng.event(str(i)) for i in range(3)]

    def firer(i, t):
        yield Delay(t)
        evs[i].fire(i * 10)

    def waiter():
        values = yield AllOf(evs)
        return values

    for i, t in enumerate((5, 1, 3)):
        eng.spawn(firer(i, t))
    w = eng.spawn(waiter())
    eng.run()
    assert w.result == [0, 10, 20]
    assert eng.now == 5


def test_all_of_empty_and_prefired():
    eng = Engine()
    evs = [eng.event(str(i)) for i in range(2)]
    for i, ev in enumerate(evs):
        ev.fire(i)

    def waiter():
        values = yield AllOf(evs)
        return values

    w = eng.spawn(waiter())
    eng.run()
    assert w.result == [0, 1]


def test_any_of_returns_first():
    eng = Engine()
    evs = [eng.event(str(i)) for i in range(3)]

    def firer(i, t):
        yield Delay(t)
        evs[i].fire(f"v{i}")

    def waiter():
        idx, value = yield AnyOf(evs)
        return idx, value

    for i, t in enumerate((5, 2, 9)):
        eng.spawn(firer(i, t))
    w = eng.spawn(waiter())
    eng.run()
    assert w.result == (1, "v1")


def test_any_of_requires_events():
    with pytest.raises(ValueError):
        AnyOf([])


def test_deadlock_detected():
    eng = Engine()
    ev = eng.event("never")

    def stuck():
        yield WaitEvent(ev)

    eng.spawn(stuck())
    with pytest.raises(Deadlock):
        eng.run()


def test_process_exception_propagates():
    eng = Engine()

    def bad():
        yield Delay(1)
        raise RuntimeError("boom")

    eng.spawn(bad())
    with pytest.raises(RuntimeError, match="boom"):
        eng.run()


def test_unsupported_yield_raises():
    eng = Engine()

    def bad():
        yield 42

    eng.spawn(bad())
    with pytest.raises(SimError, match="unsupported request"):
        eng.run()


def test_spawn_requires_generator():
    eng = Engine()
    with pytest.raises(TypeError):
        eng.spawn(lambda: None)


def test_run_until_stops_early():
    eng = Engine()

    def prog():
        yield Delay(100)

    eng.spawn(prog())
    eng.run(until=50)
    assert eng.now == 50


def test_end_event_fires_with_result():
    eng = Engine()

    def prog():
        yield Delay(1)
        return "finished"

    proc = eng.spawn(prog())

    def watcher():
        value = yield WaitEvent(proc.end_event)
        return value

    w = eng.spawn(watcher())
    eng.run()
    assert w.result == "finished"


def test_nested_yield_from_composition():
    eng = Engine()

    def inner():
        yield Delay(4)
        return 2

    def outer():
        a = yield from inner()
        b = yield from inner()
        return a + b

    proc = eng.spawn(outer())
    eng.run()
    assert proc.result == 4
    assert eng.now == 8


def test_any_of_losing_watchers_do_not_deadlock():
    """Internal any-of watcher helpers must not count toward liveness.

    After an ``AnyOf`` race is decided, the watchers for the *losing* events
    stay blocked forever.  If those helpers counted as live processes, the
    run loop would raise :class:`Deadlock` even though every user process
    finished — the regression this pins down.
    """
    eng = Engine()
    evs = [eng.event(name=f"e{i}") for i in range(3)]

    def racer():
        idx, value = yield AnyOf(evs)
        return idx

    def firer():
        yield Delay(5)
        evs[1].fire("won")
        # evs[0] and evs[2] are never fired: their watchers stay blocked

    proc = eng.spawn(racer())
    eng.spawn(firer())
    eng.run()  # must complete without Deadlock
    assert proc.result == 1
    assert eng.now == 5


def test_sequential_any_of_races_accumulate_stale_watchers():
    """Many decided races leave many dead watchers; still no false deadlock."""
    eng = Engine()

    def driver():
        for i in range(10):
            winner = eng.event(name=f"win{i}")
            loser = eng.event(name=f"lose{i}")
            eng.spawn(_fire_later(winner))
            idx, _ = yield AnyOf([loser, winner])
            assert idx == 1
        return "done"

    def _fire_later(ev):
        yield Delay(1)
        ev.fire()

    proc = eng.spawn(driver())
    eng.run()
    assert proc.result == "done"
