"""Unit + property tests for the L2 cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cache import CacheModel


def make_cache(sets=4, assoc=2):
    return CacheModel(sets=sets, assoc=assoc, line_bytes=128)


def test_miss_then_hit():
    c = make_cache()
    hit, _ = c.access(10, write=False)
    assert not hit
    hit, _ = c.access(10, write=False)
    assert hit
    assert c.hits == 1 and c.misses == 1


def test_write_marks_dirty():
    c = make_cache()
    c.access(10, write=True)
    assert c.is_dirty(10)
    c.downgrade(10)
    assert not c.is_dirty(10)
    assert c.contains(10)


def test_lru_eviction_order():
    c = make_cache(sets=1, assoc=2)
    c.access(1, False)
    c.access(2, False)
    c.access(1, False)  # 1 becomes MRU
    c.access(3, False)  # evicts 2
    assert c.contains(1) and c.contains(3) and not c.contains(2)
    assert c.evictions == 1


def test_dirty_eviction_reports_writeback():
    c = make_cache(sets=1, assoc=1)
    c.access(1, write=True)
    _, evicted = c.access(2, write=False)
    assert evicted == 1
    assert c.writebacks == 1


def test_clean_eviction_is_silent():
    c = make_cache(sets=1, assoc=1)
    c.access(1, write=False)
    _, evicted = c.access(2, write=False)
    assert evicted is None
    assert c.evictions == 1 and c.writebacks == 0


def test_drop_invalidates():
    c = make_cache()
    c.access(5, False)
    assert c.drop(5)
    assert not c.contains(5)
    assert not c.drop(5)


def test_sets_isolate_lines():
    c = make_cache(sets=4, assoc=1)
    for line in range(4):  # lines 0..3 map to different sets
        c.access(line, False)
    assert all(c.contains(line) for line in range(4))
    assert c.evictions == 0


def test_line_addressing():
    c = make_cache()
    assert c.line_of(0) == 0
    assert c.line_of(127) == 0
    assert c.line_of(128) == 1


def test_flush_empties():
    c = make_cache()
    for line in range(5):
        c.access(line, False)
    assert c.flush() == 5
    assert c.resident_lines() == 0


def test_evict_hook_called():
    c = make_cache(sets=1, assoc=1)
    evicted = []
    c.set_evict_hook(evicted.append)
    c.access(1, False)
    c.access(2, False)
    assert evicted == [1]


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        CacheModel(sets=0, assoc=1, line_bytes=128)
    with pytest.raises(ValueError):
        CacheModel(sets=1, assoc=1, line_bytes=100)


@settings(max_examples=100, deadline=None)
@given(
    accesses=st.lists(
        st.tuples(st.integers(min_value=0, max_value=63), st.booleans()),
        max_size=200,
    )
)
def test_occupancy_never_exceeds_capacity(accesses):
    """Invariant: resident lines <= sets*assoc, and hits+misses = accesses."""
    c = CacheModel(sets=4, assoc=2, line_bytes=128)
    for line, write in accesses:
        c.access(line, write)
    assert c.resident_lines() <= 4 * 2
    assert c.hits + c.misses == len(accesses)


@settings(max_examples=100, deadline=None)
@given(
    lines=st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=50)
)
def test_rereference_within_capacity_always_hits(lines):
    """A direct re-access of the most recent line is always a hit."""
    c = CacheModel(sets=8, assoc=2, line_bytes=128)
    for line in lines:
        c.access(line, False)
        hit, _ = c.access(line, False)
        assert hit
