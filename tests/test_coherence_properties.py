"""Property-based verification of the coherence protocol.

The protocol invariant a MESI-style directory must never violate:

1. the directory's sharer set for a line is exactly the set of caches
   holding that line,
2. a dirty line has a recorded owner, is held by that owner alone, and is
   marked dirty only there,
3. a line with no directory entry is in no cache.

Hypothesis drives random transaction sequences (including set-conflict
evictions, which are the hard case) and the invariant is re-checked after
every step.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.machine import Machine, MachineConfig

_NPROCS = 6
_LINES = list(range(0, 40))


def _tiny_machine() -> Machine:
    # a deliberately tiny cache (2 sets x 2 ways) so evictions are constant
    return Machine(
        MachineConfig(nprocs=_NPROCS, l2_bytes=2 * 2 * 128, l2_assoc=2)
    )


def _check_invariants(machine: Machine) -> None:
    directory = machine.directory
    caches = machine.caches
    lines = {line for line in _LINES}
    for cache in caches:
        lines.update(cache.lines())
    for line in lines:
        holders = {cpu for cpu, c in enumerate(caches) if c.contains(line)}
        sharers = directory.sharers_of(line)
        assert sharers == holders, f"line {line}: dir={sharers} caches={holders}"
        owner = directory.owner_of(line)
        dirty_holders = {cpu for cpu, c in enumerate(caches) if c.is_dirty(line)}
        if owner is not None:
            assert holders == {owner}, f"dirty line {line} shared: {holders}"
            assert dirty_holders == {owner}
        else:
            assert not dirty_holders, f"line {line} dirty without owner: {dirty_holders}"


class CoherenceMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.machine = _tiny_machine()
        self.clock = 0.0

    @rule(cpu=st.integers(0, _NPROCS - 1), line=st.sampled_from(_LINES), write=st.booleans())
    def access(self, cpu, line, write):
        self.clock += 100.0
        latency, kind = self.machine.directory.transaction(cpu, line, write, self.clock)
        assert latency >= 0
        assert kind in ("hit", "local", "remote", "dirty", "upgrade")

    @rule(cpu=st.integers(0, _NPROCS - 1))
    def flush_one_cache(self, cpu):
        # flushing without telling the directory would break it, so model a
        # full invalidation instead: drop via the directory-visible path
        self.machine.directory.flush_cache(cpu)

    @invariant()
    def protocol_consistent(self):
        _check_invariants(self.machine)


TestCoherenceStateMachine = CoherenceMachine.TestCase
TestCoherenceStateMachine.settings = settings(
    max_examples=30, stateful_step_count=60, deadline=None
)


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(0, _NPROCS - 1),
            st.sampled_from(_LINES),
            st.booleans(),
        ),
        max_size=120,
    )
)
def test_random_sequences_preserve_invariants(ops):
    machine = _tiny_machine()
    clock = 0.0
    for cpu, line, write in ops:
        clock += 50.0
        machine.directory.transaction(cpu, line, write, clock)
    _check_invariants(machine)


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, _NPROCS - 1), st.sampled_from(_LINES), st.booleans()),
        min_size=1,
        max_size=80,
    )
)
def test_latency_always_at_least_hit_cost(ops):
    machine = _tiny_machine()
    clock = 0.0
    hit_ns = machine.config.l2_hit_ns
    for cpu, line, write in ops:
        clock += 50.0
        latency, kind = machine.directory.transaction(cpu, line, write, clock)
        if kind == "hit":
            assert latency == hit_ns
        else:
            assert latency >= machine.config.local_mem_ns


@settings(max_examples=40, deadline=None)
@given(
    writes=st.lists(st.integers(0, _NPROCS - 1), min_size=2, max_size=12),
    line=st.sampled_from(_LINES),
)
def test_write_chain_single_owner(writes, line):
    """A chain of writers: ownership follows the last writer exactly."""
    machine = Machine(MachineConfig(nprocs=_NPROCS))
    for i, cpu in enumerate(writes):
        machine.directory.transaction(cpu, line, True, float(i))
    assert machine.directory.owner_of(line) == writes[-1]
    assert machine.directory.sharers_of(line) == {writes[-1]}
