"""Tests for the experiment-serving layer: store, scheduler, invalidation.

The contract under test everywhere: serving is *transparent*.  A served
result is bit-identical to a computed one, ``jobs=N`` is bit-identical
to ``jobs=1``, and a change to any signature field invalidates exactly
the dependent cells — nothing more, nothing less.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.apps.adapt import AdaptConfig
from repro.apps.jacobi import JacobiConfig
from repro.harness import run_app, sweep
from repro.harness.experiment import SCRIPT_CACHE_MAX, _ScriptCache, _script_cache
from repro.serving import (
    Cell,
    ResultStore,
    cache_key,
    plan,
    refresh,
    run_cells,
    run_identity,
    run_signature,
    run_tasks,
    serve_report,
    summarize_result,
    summary_from_payload,
)

SMALL = JacobiConfig(nx=32, ny=32, iters=4)
ADAPT = AdaptConfig(mesh_n=8, phases=2, solver_iters=2)


class TestSignatures:
    def test_stable_across_calls(self):
        assert cache_key(run_signature("jacobi", "mpi", 4, SMALL)) == \
            cache_key(run_signature("jacobi", "mpi", 4, JacobiConfig(nx=32, ny=32, iters=4)))

    def test_every_field_is_load_bearing(self):
        base = cache_key(run_signature("jacobi", "mpi", 4, SMALL))
        variants = [
            run_signature("jacobi", "shmem", 4, SMALL),
            run_signature("jacobi", "mpi", 8, SMALL),
            run_signature("jacobi", "mpi", 4, JacobiConfig(nx=32, ny=32, iters=5)),
            run_signature("jacobi", "mpi", 4, SMALL, placement="round-robin"),
            run_signature("jacobi", "mpi", 4, SMALL, faults="drizzle"),
            run_signature("jacobi", "mpi", 4, SMALL, derived={"engine_batch": "off"}),
        ]
        keys = {cache_key(v) for v in variants}
        assert base not in keys and len(keys) == len(variants)

    def test_scenario_signature_uses_content_hash(self):
        from repro.workloads.synth import generate_scenario

        a = generate_scenario("multi_front", seed=1, mesh_n=6, phases=2, solver_iters=2)
        b = generate_scenario("multi_front", seed=2, mesh_n=6, phases=2, solver_iters=2)
        sig = run_signature("scenario", "mpi", 4, a)
        assert sig["workload"] == {"kind": "scenario", "content_hash": a.content_hash()}
        assert cache_key(sig) != cache_key(run_signature("scenario", "mpi", 4, b))

    def test_cross_process_hash_stability(self):
        """The key is a disk-wide contract: a fresh interpreter must agree."""
        code = (
            "from repro.apps.jacobi import JacobiConfig\n"
            "from repro.serving import cache_key, run_signature\n"
            "print(cache_key(run_signature('jacobi', 'mpi', 4, "
            "JacobiConfig(nx=32, ny=32, iters=4), faults='drizzle')))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
            cwd=str(Path(__file__).resolve().parent.parent),
            env={**os.environ, "PYTHONPATH": "src"},
        )
        here = cache_key(run_signature("jacobi", "mpi", 4, SMALL, faults="drizzle"))
        assert out.stdout.strip() == here

    def test_identity_ignores_content(self):
        ident = run_identity("jacobi", "mpi", 4, SMALL)
        assert ident == "jacobi/JacobiConfig/mpi/P4/first-touch/none/default"
        assert run_identity("jacobi", "mpi", 4, JacobiConfig(nx=64, ny=64, iters=9)) == ident


class TestResultStore:
    def test_round_trip_is_bit_identical(self, tmp_path):
        store = ResultStore(tmp_path)
        result = run_app("jacobi", "mpi", 2, SMALL)
        sig = run_signature("jacobi", "mpi", 2, SMALL)
        key = cache_key(sig)
        assert store.get(key) is None  # cold
        store.put(key, sig, summarize_result(result))
        summary = summary_from_payload(store.get(key))
        assert summary.cached
        assert summary.elapsed_ns == result.elapsed_ns
        assert list(summary.rank_results) == list(result.rank_results)
        assert summary.stats.total("msgs_sent") == result.stats.total("msgs_sent")
        assert summary.stats.breakdown_totals() == result.stats.breakdown_totals()
        assert (store.hits, store.misses, store.puts) == (1, 1, 1)

    def test_corrupt_object_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        sig = run_signature("jacobi", "mpi", 2, SMALL)
        key = cache_key(sig)
        store.put(key, sig, {"model": "mpi"})
        store.path_for(key).write_text("{not json")
        assert store.get(key) is None
        assert store.read_errors == 1

    def test_verify_flags_drifted_content(self, tmp_path):
        store = ResultStore(tmp_path)
        sig = run_signature("jacobi", "mpi", 2, SMALL)
        key = cache_key(sig)
        store.put(key, sig, {"model": "mpi"})
        assert store.verify() == []
        record = json.loads(store.path_for(key).read_text())
        record["signature"]["nprocs"] = 64  # content no longer hashes to the key
        store.path_for(key).write_text(json.dumps(record))
        assert len(store.verify()) == 1

    def test_gc_outdated_and_everything(self, tmp_path):
        store = ResultStore(tmp_path)
        sig = run_signature("jacobi", "mpi", 2, SMALL)
        store.put(cache_key(sig), sig, {"model": "mpi"})
        old = dict(sig, engine="0.0.1")
        store.put(cache_key(old), old, {"model": "mpi"})
        assert store.gc(outdated=True) == 1
        assert store.gc(everything=True) == 1
        assert store.stats()["entries"] == 0

    def test_unserialisable_payload_is_not_cached(self, tmp_path):
        store = ResultStore(tmp_path)
        sig = run_signature("jacobi", "mpi", 2, SMALL)
        assert store.put(cache_key(sig), sig, {"bad": object()}) is None
        assert store.stats()["entries"] == 0


class TestRunAppStore:
    def test_warm_run_is_served_and_identical(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = run_app("jacobi", "mpi", 2, SMALL, store=store)
        warm = run_app("jacobi", "mpi", 2, SMALL, store=store)
        assert warm.cached and not getattr(cold, "cached", False)
        assert warm.elapsed_ns == cold.elapsed_ns
        assert list(warm.rank_results) == list(cold.rank_results)
        assert store.hit_rate == 0.5

    def test_traced_runs_bypass_the_store(self, tmp_path):
        store = ResultStore(tmp_path)
        run_app("jacobi", "mpi", 2, SMALL, store=store)
        traced = run_app("jacobi", "mpi", 2, SMALL, store=store, trace=True)
        assert traced.events  # a served summary could never carry events
        assert store.hits == 0


class TestScheduler:
    def test_jobs_do_not_change_results(self):
        cells = [Cell("jacobi", m, p, SMALL)
                 for m in ("mpi", "shmem") for p in (1, 2)]
        serial = run_cells(cells, jobs=1)
        sharded = run_cells(cells, jobs=4)
        assert [r.summary.elapsed_ns for r in serial] == \
            [r.summary.elapsed_ns for r in sharded]
        assert [r.summary.rank_results for r in serial] == \
            [r.summary.rank_results for r in sharded]
        assert all(r.source == "computed" for r in sharded)

    def test_results_in_input_order(self, tmp_path):
        store = ResultStore(tmp_path)
        cells = [Cell("jacobi", "mpi", p, SMALL) for p in (4, 1, 2)]
        results = run_cells(cells, store=store, jobs=2)
        assert [r.cell.nprocs for r in results] == [4, 1, 2]
        again = run_cells(cells, store=store)
        assert all(r.source == "store" for r in again)
        assert [r.summary.elapsed_ns for r in again] == \
            [r.summary.elapsed_ns for r in results]

    def test_errors_are_captured_not_fatal(self):
        cells = [Cell("jacobi", "mpi", 2, SMALL), Cell("nosuchapp", "mpi", 2)]
        good, bad = run_cells(cells)
        assert good.summary is not None
        assert bad.source == "error" and bad.summary is None
        assert "unknown app" in bad.error
        report = serve_report([good, bad])
        assert report["errors"] == 1 and report["failed_cells"] == ["nosuchapp/mpi/P2"]

    def test_run_tasks_timeout_is_captured(self):
        # two payloads: a single payload clamps jobs to 1 and runs inline,
        # where the deadline is deliberately not enforced
        results = run_tasks(_slow_task, [0.0, 0.0], jobs=2, timeout=0.1)
        assert all(value is None for value, _, _ in results)
        assert all(error.startswith("timeout") for _, error, _ in results)


def _slow_task(_payload):
    import time

    time.sleep(2.0)


class TestInvalidation:
    def test_knob_change_invalidates_only_dependent_cells(self, tmp_path):
        store = ResultStore(tmp_path)
        cells = [Cell("jacobi", m, 2, SMALL) for m in ("mpi", "shmem", "sas")]
        _, report = refresh(cells, store)
        assert (report["hits"], report["misses"]) == (0, 3)
        changed = [Cell("jacobi", "mpi", 2, JacobiConfig(nx=32, ny=32, iters=5))] + cells[1:]
        ahead = plan(changed, store)
        assert [e.cell.model for e in ahead.misses] == ["mpi"]
        _, report = refresh(changed, store, gc_stale=True)
        assert (report["hits"], report["misses"]) == (2, 1)
        assert report["invalidated"] == 1 and report["stale_removed"] == 1
        assert report["stale_identities"] == [
            "jacobi/JacobiConfig/mpi/P2/first-touch/none/default"
        ]

    def test_noop_refresh_is_all_hits(self, tmp_path):
        store = ResultStore(tmp_path)
        cells = [Cell("jacobi", "mpi", p, SMALL) for p in (1, 2)]
        refresh(cells, store)
        _, report = refresh(cells, store)
        assert (report["hits"], report["misses"], report["invalidated"]) == (2, 0, 0)


class TestSweepServing:
    def test_sweep_jobs_rows_identical(self):
        rows1 = sweep("jacobi", models=("mpi", "shmem"), nprocs_list=(1, 2),
                      workload=SMALL)
        rows2 = sweep("jacobi", models=("mpi", "shmem"), nprocs_list=(1, 2),
                      workload=SMALL, jobs=2)
        assert [(r.model, r.nprocs, r.elapsed_ms, r.speedup) for r in rows1] == \
            [(r.model, r.nprocs, r.elapsed_ms, r.speedup) for r in rows2]

    def test_sweep_store_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = sweep("jacobi", models=("mpi",), nprocs_list=(1, 2),
                     workload=SMALL, store=store)
        warm = sweep("jacobi", models=("mpi",), nprocs_list=(1, 2),
                     workload=SMALL, store=store)
        assert store.hits == 2
        assert [r.elapsed_ms for r in cold] == [r.elapsed_ms for r in warm]

    def test_failed_cell_raises(self, tmp_path):
        with pytest.raises(RuntimeError, match="sweep cell"):
            sweep("jacobi", models=("nosuchmodel",), nprocs_list=(1,),
                  workload=SMALL, store=ResultStore(tmp_path))

    def test_scenario_bench_warm_pass_is_byte_identical(self, tmp_path):
        from repro.harness.scenariobench import run_scenario_bench

        kwargs = dict(
            classes=("multi_front",), models=("mpi", "shmem"),
            nprocs_list=(2,), intensities=(0.2,), mesh_n=6, phases=2,
            solver_iters=2, include_insights=False,
        )
        store = ResultStore(tmp_path)
        cold = run_scenario_bench(store=store, **kwargs)
        cold_lookups = store.lookups
        assert store.hits == 0
        warm = run_scenario_bench(store=store, **kwargs)
        warm_lookups = store.lookups - cold_lookups
        assert warm_lookups > 0 and store.hits == warm_lookups  # 100% served
        assert json.dumps(cold, sort_keys=True) == json.dumps(warm, sort_keys=True)

    def test_fault_bench_verify_runs_bypass_store(self, tmp_path):
        from repro.harness.faultbench import run_fault_bench

        store = ResultStore(tmp_path)
        record = run_fault_bench(
            "jacobi", models=("mpi",), nprocs_list=(2,), profile="drizzle",
            workload=SMALL, store=store, verify=True,
        )
        # 2 measurement cells stored; verify re-simulated outside the store
        assert store.puts == 2
        warm = run_fault_bench(
            "jacobi", models=("mpi",), nprocs_list=(2,), profile="drizzle",
            workload=SMALL, store=store, verify=True,
        )
        assert store.hits == 2
        assert warm["rows"] == record["rows"]


class TestScriptCacheLRU:
    def test_bounded_with_eviction_counter(self):
        from repro.sim.profile import PROFILER

        ticks_before = PROFILER.calls("script-cache-evict")
        cache = _ScriptCache(maxsize=3)
        for i in range(5):
            cache[f"k{i}"] = i
        assert len(cache) == 3 and cache.evictions == 2
        assert list(cache) == ["k2", "k3", "k4"]  # oldest two evicted
        assert PROFILER.calls("script-cache-evict") == ticks_before + 2

    def test_reads_refresh_recency(self):
        cache = _ScriptCache(maxsize=3)
        for i in range(3):
            cache[f"k{i}"] = i
        assert cache.get("k0") == 0  # touch the oldest entry …
        cache["k3"] = 3              # … so the eviction takes k1 instead
        assert "k0" in cache and "k1" not in cache

    def test_global_cache_is_bounded(self):
        assert isinstance(_script_cache, _ScriptCache)
        assert _script_cache.maxsize == SCRIPT_CACHE_MAX
        _script_cache.clear()
        run_app("adapt", "mpi", 2, ADAPT)
        run_app("adapt", "mpi", 2, ADAPT, placement="round-robin")
        assert len(_script_cache) == 2  # distinct signatures, distinct keys
        _script_cache.clear()
