"""Fault-injection subsystem: determinism, recovery, and zero-cost-off.

The contract under test (see docs/faults.md):

* faults off — bit-identical to a machine built with no fault plane at
  all (``faults=None`` vs ``faults="none"`` vs the profile-less default);
* faults on — two runs with the same seed and profile are bit-identical
  in simulated time, per-rank results, counters *and* event streams;
* every model actually recovers (nonzero retries under "lossy" at P=4);
* the knobs behave: windows gate injection, ``drop_rate=1.0`` exhausts
  retries into :class:`FaultRecoveryError`, NACK bounces are bounded.
"""

import pytest

from repro.faults import (
    COUNTER_KEYS,
    FaultPlane,
    FaultProfile,
    FaultRecoveryError,
    PROFILES,
    resolve_profile,
)
from repro.harness.experiment import run_app
from repro.harness.faultbench import run_fault_bench
from repro.models.registry import run_program

MODELS = ("mpi", "shmem", "sas")


def _adapt(model, faults=None, nprocs=4, trace=False):
    from repro.apps.adapt import AdaptConfig

    wl = AdaptConfig(mesh_n=8, phases=3, solver_iters=6)
    return run_app("adapt", model, nprocs, wl, trace=trace, faults=faults)


def _fingerprint(result):
    events = (
        [e.to_dict() for e in result.events] if result.events is not None else None
    )
    return (
        result.elapsed_ns,
        repr(result.rank_results),
        result.stats.summary(),
        result.fault_summary,
        events,
    )


# -- profiles -----------------------------------------------------------------


def test_profiles_resolve():
    for name in PROFILES:
        prof = resolve_profile(name)
        assert prof.name == name
    assert resolve_profile(None).name == "none"
    assert not resolve_profile(None).any_faults
    assert resolve_profile("lossy").any_faults
    custom = FaultProfile(name="x", drop_rate=0.5)
    assert resolve_profile(custom) is custom
    reseeded = resolve_profile("lossy", seed=99)
    assert reseeded.seed == 99 and reseeded.drop_rate == PROFILES["lossy"].drop_rate


def test_profile_validation():
    with pytest.raises(ValueError):
        FaultProfile(name="bad", drop_rate=1.5)
    with pytest.raises(ValueError):
        FaultProfile(name="bad", max_retries=-1)
    with pytest.raises(ValueError):
        resolve_profile("no-such-profile")


def test_plane_counters_schema():
    plane = FaultPlane(resolve_profile("lossy"))
    assert plane.enabled
    assert set(plane.counters) == set(COUNTER_KEYS)
    assert FaultPlane().enabled is False


# -- zero-cost when off -------------------------------------------------------


@pytest.mark.parametrize("model", MODELS)
def test_faults_off_bit_identical(model):
    """faults=None, faults="none" and the default machine agree exactly."""
    plain = _fingerprint(_adapt(model))
    named_off = _fingerprint(_adapt(model, faults="none"))
    assert plain == named_off


# -- determinism under injection ----------------------------------------------


@pytest.mark.parametrize("model", MODELS)
def test_seeded_faults_deterministic(model):
    """Same seed + profile => bit-identical runs, events included."""
    a = _fingerprint(_adapt(model, faults="lossy", trace=True))
    b = _fingerprint(_adapt(model, faults="lossy", trace=True))
    assert a == b


@pytest.mark.parametrize("model", MODELS)
def test_tracing_does_not_change_faulted_time(model):
    traced = _adapt(model, faults="lossy", trace=True)
    untraced = _adapt(model, faults="lossy")
    assert traced.elapsed_ns == untraced.elapsed_ns
    assert traced.fault_summary == untraced.fault_summary


def test_different_seeds_differ():
    a = _adapt("mpi", faults=resolve_profile("lossy", seed=1))
    b = _adapt("mpi", faults=resolve_profile("lossy", seed=2))
    assert a.fault_summary["counters"] != b.fault_summary["counters"]


# -- recovery actually exercised ----------------------------------------------


@pytest.mark.parametrize("model", MODELS)
def test_lossy_profile_forces_recovery(model):
    result = _adapt(model, faults="lossy")
    summary = result.fault_summary
    assert summary is not None and summary["enabled"]
    assert summary["total_retries"] > 0
    if model == "sas":
        assert summary["counters"]["nack"] > 0
    else:
        key = "retry_mpi" if model == "mpi" else "retry_shmem"
        assert summary["counters"][key] > 0
        # recovery costs simulated time vs the fault-free run
        base = _adapt(model)
        assert result.elapsed_ns > base.elapsed_ns


def test_retry_events_in_trace():
    result = _adapt("mpi", faults="lossy", trace=True)
    kinds = {e.kind for e in result.events}
    assert "fault_drop" in kinds and "retry" in kinds
    retries = [e for e in result.events if e.kind == "retry"]
    assert all(e.attrs["attempt"] >= 1 for e in retries)
    models = {e.attrs["model"] for e in retries}
    assert "mpi" in models  # point-to-point retransmission
    # dropped collective-tree messages recover via subtree re-subscribe
    assert models <= {"mpi", "coll"}


def test_nack_events_in_trace():
    result = _adapt("sas", faults="nacky", trace=True)
    nacks = [e for e in result.events if e.kind == "fault_nack"]
    assert nacks and all(e.attrs["bounces"] >= 1 for e in nacks)


# -- knob semantics -----------------------------------------------------------


def test_window_gates_injection():
    closed = PROFILES["lossy"].with_(name="closed", window_ns=(0.0, 0.0))
    faulted = _adapt("mpi", faults=closed)
    counters = faulted.fault_summary["counters"]
    assert all(counters[k] == 0 for k in ("drop", "dup", "delay", "nack"))
    assert faulted.elapsed_ns == _adapt("mpi").elapsed_ns


def test_total_loss_raises_recovery_error():
    """drop_rate=1.0: every retransmission dies too => FaultRecoveryError."""
    black_hole = FaultProfile(
        name="black-hole", drop_rate=1.0, max_retries=2, retry_timeout_ns=100.0
    )

    def program(ctx):
        # rank 0 -> last rank crosses nodes (same-node copies can't drop)
        last = ctx.nprocs - 1
        if ctx.rank == 0:
            yield from ctx.send(1.0, dest=last, tag=7)
        elif ctx.rank == last:
            yield from ctx.recv(source=0, tag=7)

    with pytest.raises(FaultRecoveryError):
        run_program("mpi", program, 4, faults=black_hole)


def test_nack_bounces_bounded():
    prof = FaultProfile(name="all-nack", nack_rate=1.0, max_nacks=3)
    plane = FaultPlane(prof)
    for _ in range(200):
        assert plane.nack_bounces(0, 0.0) <= 3
    assert plane.counters["nack"] > 0


def test_fault_bench_smoke():
    record = run_fault_bench(
        app="jacobi", models=("mpi",), nprocs_list=(2,), profile="stress",
        verify=True,
    )
    row = record["rows"][0]
    assert row["model"] == "mpi" and row["verified_deterministic"]
    assert row["faulted_ns"] >= row["baseline_ns"]
