"""Golden equivalence: the batched memory pipeline vs the scalar one.

The batched fast path (``Directory.transaction_batch``) must be invisible in
every simulated quantity — latencies bit-identical (no tolerance), the same
miss-kind counts, the same cache and directory state, the same home-memory
queue occupancy, and the same application checksums.  Only *host* time may
differ.  ``config.derived["sas_batch"] = "off"`` forces every line through
the scalar :meth:`Directory.transaction`, which is the reference here.
"""

import numpy as np
import pytest

from repro.apps.adapt import ADAPT_PROGRAMS, AdaptConfig, build_script
from repro.machine import Machine, MachineConfig
from repro.machine.directory import TRANSACTION_KINDS
from repro.models.registry import run_program

# mesh_n=12 is the smallest workload whose shared-array sweeps are long
# enough (>= 16 cache lines) to actually enter the vectorised fast path.
ADAPT_CFG = AdaptConfig(mesh_n=12, phases=3, solver_iters=4)


def _pair(nprocs: int):
    on = Machine(MachineConfig(nprocs=nprocs))
    off = Machine(MachineConfig(nprocs=nprocs, derived={"sas_batch": "off"}))
    assert on.directory.batch_enabled
    assert not off.directory.batch_enabled
    return on, off


def _machine_state(machine: Machine):
    d = machine.directory
    lines = set()
    for cache in d.caches:
        lines.update(cache.lines())
    dir_state = {
        line: (d.sharers_of(line), d.owner_of(line)) for line in sorted(lines)
    }
    cache_state = [
        (sorted(c.lines()), int(c.hits), int(c.misses)) for c in d.caches
    ]
    return dir_state, cache_state, list(d._busy_until), machine.stats.summary()


def _random_trace(rng, nprocs, steps):
    """A stream of (cpu, lines, write, coherence_only) batch requests."""
    trace = []
    for _ in range(steps):
        cpu = int(rng.integers(nprocs))
        if rng.random() < 0.5:  # dense sweep (the stouch shape)
            start = int(rng.integers(0, 300))
            lines = np.arange(start, start + int(rng.integers(1, 120)), dtype=np.int64)
        else:  # scattered gather (the stouch_idx shape)
            lines = rng.integers(0, 400, size=int(rng.integers(1, 120))).astype(np.int64)
        trace.append((cpu, lines, bool(rng.random() < 0.5), bool(rng.random() < 0.3)))
    return trace


class TestTraceEquivalence:
    """Drive both pipelines with identical random request streams."""

    @pytest.mark.parametrize("nprocs", (1, 2, 4, 8))
    def test_randomized_traces_bit_identical(self, nprocs):
        rng = np.random.default_rng(1234 + nprocs)
        on, off = _pair(nprocs)
        now_on = now_off = 0.0
        for cpu, lines, write, coh in _random_trace(rng, nprocs, steps=40):
            lat_on, counts_on = on.directory.transaction_batch(
                cpu, lines, write, now_on, coherence_only=coh
            )
            lat_off, counts_off = off.directory.transaction_batch(
                cpu, lines, write, now_off, coherence_only=coh
            )
            assert lat_on == lat_off  # exact float equality, no approx
            assert counts_on == counts_off
            now_on += lat_on
            now_off += lat_off
        assert on.directory.batch_fast_lines > 0  # the fast path actually ran
        assert _machine_state(on) == _machine_state(off)

    def test_small_cache_forces_evictions_and_stays_identical(self):
        """Tiny caches maximise conflict evictions, writebacks and LRU churn."""
        cfg = dict(nprocs=4, l2_bytes=4096)  # 64 lines/CPU: constant turnover
        on = Machine(MachineConfig(**cfg))
        off = Machine(MachineConfig(**cfg, derived={"sas_batch": "off"}))
        rng = np.random.default_rng(99)
        now_on = now_off = 0.0
        for cpu, lines, write, coh in _random_trace(rng, 4, steps=60):
            lat_on, _ = on.directory.transaction_batch(cpu, lines, write, now_on, coherence_only=coh)
            lat_off, _ = off.directory.transaction_batch(cpu, lines, write, now_off, coherence_only=coh)
            assert lat_on == lat_off
            now_on += lat_on
            now_off += lat_off
        assert on.stats.writebacks_charged > 0  # evictions actually happened
        assert _machine_state(on) == _machine_state(off)

    def test_counts_cover_all_kinds(self):
        """One crafted trace exercises every transaction kind in batch mode."""
        on, off = _pair(4)
        totals = {k: 0 for k in TRANSACTION_KINDS}
        lines = np.arange(0, 64, dtype=np.int64)
        plan = [
            (0, lines, True),   # local fills
            (0, lines, False),  # hits
            (1, lines, False),  # dirty interventions (reads of dirty lines)
            (2, lines, False),  # remote/local clean fills
            (1, lines, True),   # upgrades (1 already shares)
        ]
        now_on = now_off = 0.0
        for cpu, seg, write in plan:
            lat_on, counts_on = on.directory.transaction_batch(cpu, seg, write, now_on)
            lat_off, counts_off = off.directory.transaction_batch(cpu, seg, write, now_off)
            assert lat_on == lat_off
            assert counts_on == counts_off
            now_on += lat_on
            now_off += lat_off
            for k, v in counts_on.items():
                totals[k] += v
        for kind in ("hit", "local", "dirty", "upgrade"):
            assert totals[kind] > 0, f"trace never produced kind {kind!r}"
        assert _machine_state(on) == _machine_state(off)


class TestAppEquivalence:
    """The adapt application end-to-end, batch on vs off."""

    @pytest.mark.parametrize("nprocs", (1, 4, 8))
    def test_adapt_identical_under_batching(self, nprocs):
        script = build_script(ADAPT_CFG, nprocs)
        machine_on = Machine(MachineConfig(nprocs=nprocs))
        res_on = run_program(
            "sas", ADAPT_PROGRAMS["sas"], nprocs, script, machine=machine_on
        )
        res_off = run_program(
            "sas",
            ADAPT_PROGRAMS["sas"],
            nprocs,
            script,
            config=MachineConfig(nprocs=nprocs, derived={"sas_batch": "off"}),
        )
        assert res_on.elapsed_ns == res_off.elapsed_ns  # bit-identical ns
        assert res_on.rank_results == res_off.rank_results
        assert res_on.stats.summary() == res_off.stats.summary()
        # and the run really used the vectorised path (not a silent fallback)
        if nprocs > 1:
            assert machine_on.directory.batch_fast_lines > 0

    def test_checksum_matches_sequential_reference(self):
        script = build_script(ADAPT_CFG, 4)
        res = run_program("sas", ADAPT_PROGRAMS["sas"], 4, script)
        for r in res.rank_results:
            assert r == pytest.approx(script.reference_checksum, abs=1e-9)


class TestMicrobench:
    def test_record_shape_and_equivalence(self):
        from repro.harness.profile import run_sas_microbench

        rec = run_sas_microbench(nprocs=2, elements=2000, sweeps=1, compare=True)
        assert rec["identical_simulated_ns"] is True
        assert rec["batch_enabled"] is True
        assert rec["lines_touched"] > 0
        assert rec["speedup"] == pytest.approx(
            rec["scalar"]["host_seconds"] / rec["batch"]["host_seconds"]
        )
        assert rec["workload"] == {
            "model": "sas",
            "nprocs": 2,
            "elements_per_rank": 2000,
            "sweeps": 1,
        }
