"""Exhaustive property tests for deep-hypercube routing, P = 2 .. 128.

These replace the hand-enumerated route cases that previously lived in
``test_machine_topology.py``: every invariant below is checked for *every*
ordered node pair at *every* power-of-two processor count, so the P=64/128
deepening (dimension-4/5 cubes, routing tables, deep-hop accounting) is
covered by construction rather than by example.
"""

import pytest

from repro.machine.config import MachineConfig
from repro.machine.topology import Topology

POWERS = [2, 4, 8, 16, 32, 64, 128]


@pytest.fixture(scope="module", params=POWERS, ids=lambda p: f"P{p}")
def topo(request):
    return Topology(MachineConfig(nprocs=request.param))


def _pairs(topo):
    for a in range(topo.nnodes):
        for b in range(topo.nnodes):
            yield a, b


def _routers(topo, a, b):
    cfg = topo.config
    return cfg.router_of_node(a), cfg.router_of_node(b)


def test_route_length_is_two_plus_popcount(topo):
    """Every route is hub-out + one cube link per differing dimension + hub-in."""
    for a, b in _pairs(topo):
        info = topo.route_info(a, b)
        if a == b:
            assert info == ((), 0, 0)
            continue
        ra, rb = _routers(topo, a, b)
        pop = bin(ra ^ rb).count("1")
        assert len(info.links) == 2 + pop
        assert info.hops == pop == topo.router_hops(a, b)


def test_deep_hops_count_high_dimensions(topo):
    """deep_hops == popcount of the XOR above ``deep_dim_start``."""
    start = topo.config.deep_dim_start
    saw_deep = False
    for a, b in _pairs(topo):
        ra, rb = _routers(topo, a, b)
        expect = bin((ra ^ rb) >> start).count("1")
        assert topo.deep_hops(a, b) == expect
        assert topo.route_info(a, b).deep_hops == expect
        saw_deep = saw_deep or expect > 0
    # only machines deeper than 8 routers have long-cable hops at all —
    # that is exactly what keeps P<=32 bit-identical to the seed model
    assert saw_deep == (topo.nrouters > 8)


def test_route_endpoints_and_contiguity(topo):
    """Routes start at the source hub, walk connected routers, end at dst."""
    cfg = topo.config
    for a, b in _pairs(topo):
        if a == b:
            continue
        links = [topo.links[i] for i in topo.route(a, b)]
        assert links[0].kind == "hub-out" and links[0].src == a
        assert links[-1].kind == "hub-in" and links[-1].dst == b
        cur = cfg.router_of_node(a)
        for link in links[1:-1]:
            assert link.kind == "cube"
            assert link.src == cur
            cur = link.dst
        assert cur == cfg.router_of_node(b)


def test_route_symmetry(topo):
    """a->b and b->a traverse the same dimensions, hence the same costs."""
    for a, b in _pairs(topo):
        fwd = topo.route_info(a, b)
        rev = topo.route_info(b, a)
        assert len(fwd.links) == len(rev.links)
        assert (fwd.hops, fwd.deep_hops) == (rev.hops, rev.deep_hops)
        fdims = [topo.links[i].dim for i in fwd.links if topo.links[i].kind == "cube"]
        rdims = [topo.links[i].dim for i in rev.links if topo.links[i].kind == "cube"]
        assert fdims == rdims  # e-cube: dimensions in increasing order


def test_no_self_loops_or_repeated_routers(topo):
    """No cube link loops back; no route visits a router twice."""
    for link in topo.links:
        if link.kind == "cube":
            assert link.src != link.dst
    for a, b in _pairs(topo):
        if a == b:
            continue
        seen = {topo.config.router_of_node(a)}
        for i in topo.route(a, b):
            link = topo.links[i]
            if link.kind == "cube":
                assert link.dst not in seen, "route revisited a router"
                seen.add(link.dst)


def test_link_ranks_strictly_increase(topo):
    """The deadlock-freedom invariant, for every pair at every depth."""
    for a, b in _pairs(topo):
        ranks = [topo.links[i].rank for i in topo.route(a, b)]
        assert ranks == sorted(ranks)
        assert len(set(ranks)) == len(ranks)


def test_routing_tables_built_eagerly(topo):
    """Power-of-two machines precompute the full node-pair table."""
    assert len(topo._routes) == topo.nnodes * topo.nnodes
    # cached entries are returned by identity (cheap repeated lookups)
    assert topo.route(0, topo.nnodes - 1) is topo.route(0, topo.nnodes - 1)


def test_link_keys_stable_across_depths():
    """Growing the machine only *adds* links; existing keys never change.

    The (kind, src, dst) identity of every link at P is present at every
    larger power-of-two P' — so per-link statistics keyed this way stay
    comparable across the sweep axis.
    """
    keys = {}
    for p in POWERS:
        topo = Topology(MachineConfig(nprocs=p))
        keys[p] = set(topo._link_index)
    for small, big in zip(POWERS, POWERS[1:]):
        assert keys[small] <= keys[big]


def test_unroutable_router_count_raises_clearly():
    """Non-power-of-two router counts fail with guidance, not a KeyError.

    nprocs=12 gives 3 routers; e-cube from router 2 to router 1 needs the
    dimension-0 link 2->3, which does not exist.  Node 4 (router 2) to
    node 2 (router 1) must therefore raise the explanatory ValueError.
    """
    topo = Topology(MachineConfig(nprocs=12))
    with pytest.raises(ValueError, match="power of two"):
        topo.route(4, 2)
    # pairs that never need a missing link still route fine
    assert len(topo.route(0, 2)) >= 2
