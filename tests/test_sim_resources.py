"""Unit tests for FIFO resources and channels."""

import pytest

from repro.sim import Channel, Delay, Engine, Mutex, Resource, SimError


def test_resource_serialises_holders():
    eng = Engine()
    res = Resource(eng, capacity=1, name="link")
    spans = []

    def user(tag):
        yield from res.acquire()
        start = eng.now
        yield Delay(10)
        res.release()
        spans.append((tag, start, eng.now))

    for tag in range(3):
        eng.spawn(user(tag))
    eng.run()
    assert spans == [(0, 0, 10), (1, 10, 20), (2, 20, 30)]


def test_resource_capacity_two_overlaps():
    eng = Engine()
    res = Resource(eng, capacity=2)

    def user():
        yield from res.acquire()
        yield Delay(10)
        res.release()

    for _ in range(4):
        eng.spawn(user())
    eng.run()
    assert eng.now == 20  # two waves of two


def test_resource_fifo_ordering():
    eng = Engine()
    res = Resource(eng, capacity=1)
    order = []

    def user(tag, arrival):
        yield Delay(arrival)
        yield from res.acquire()
        order.append(tag)
        yield Delay(5)
        res.release()

    for tag, arrival in enumerate((0, 1, 2, 3)):
        eng.spawn(user(tag, arrival))
    eng.run()
    assert order == [0, 1, 2, 3]


def test_release_idle_is_error():
    eng = Engine()
    res = Resource(eng, capacity=1)
    with pytest.raises(SimError):
        res.release()


def test_bad_capacity_rejected():
    eng = Engine()
    with pytest.raises(ValueError):
        Resource(eng, capacity=0)


def test_using_holds_and_releases():
    eng = Engine()
    res = Resource(eng, capacity=1)

    def user():
        yield from res.using(7)

    eng.spawn(user())
    eng.spawn(user())
    eng.run()
    assert eng.now == 14
    assert res.in_use == 0


def test_utilisation_accounting():
    eng = Engine()
    res = Resource(eng, capacity=1)

    def user():
        yield from res.using(25)
        yield Delay(75)

    eng.spawn(user())
    eng.run()
    assert res.utilisation(100.0) == pytest.approx(0.25)


def test_wait_time_statistic():
    eng = Engine()
    res = Resource(eng, capacity=1)

    def user():
        yield from res.using(10)

    eng.spawn(user())
    eng.spawn(user())
    eng.run()
    assert res.total_wait_ns == pytest.approx(10)
    assert res.total_acquires == 2


def test_channel_put_then_get():
    eng = Engine()
    ch = Channel(eng)

    def consumer():
        item = yield from ch.get()
        return item

    ch.put("x")
    cons = eng.spawn(consumer())
    eng.run()
    assert cons.result == "x"


def test_channel_get_blocks_until_put():
    eng = Engine()
    ch = Channel(eng)

    def consumer():
        item = yield from ch.get()
        return item, eng.now

    def producer():
        yield Delay(5)
        ch.put(42)

    cons = eng.spawn(consumer())
    eng.spawn(producer())
    eng.run()
    assert cons.result == (42, 5)


def test_channel_fifo_and_len():
    eng = Engine()
    ch = Channel(eng)
    for i in range(3):
        ch.put(i)
    assert len(ch) == 3
    assert ch.peek_all() == [0, 1, 2]

    def consumer():
        out = []
        for _ in range(3):
            item = yield from ch.get()
            out.append(item)
        return out

    cons = eng.spawn(consumer())
    eng.run()
    assert cons.result == [0, 1, 2]
    assert len(ch) == 0
