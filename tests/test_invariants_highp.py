"""Cross-model conservation & determinism invariants at P ∈ {32, 64, 128}.

The high-P scaling work (deep hypercube routing, coarse sharer vectors,
batched network transfers, vectorised MPI matching) is locked down here by
invariants that must hold for *every* model at *every* processor count:

* **Flow conservation** — replaying each traced ``net`` event over the
  routing tables, every router's inbound bytes equal its outbound bytes
  (Kirchhoff's law for the hypercube), and the event stream's total bytes
  and message count agree with the machine's own statistics counters.
* **Matching conservation** — every MPI ``msg_send`` has exactly one
  ``msg_recv`` with the same per-pair byte total; every SHMEM ``put`` has
  exactly one ``put_done``.
* **Barrier monotonicity** — per-rank barrier ``gen`` numbers are strictly
  increasing (shmem/sas), and the trace-based synchronization checker
  finds no violations in any model's stream.
* **Determinism** — running the same configuration twice on fresh
  machines is bit-identical: elapsed nanoseconds, per-rank results, and
  the full statistics summary (also under fault injection).
* **Golden equivalence** — each new fast path (``net_batch``,
  ``mpi_match_batch``) is bit-identical to its scalar twin, and the
  ``derived[...] = "off"`` opt-outs demonstrably restore the scalar code
  paths (fast-transfer / vector-scan counters stay at zero).

P=128 cases carry the ``nightly`` marker so the tier-1 run stays fast;
the scheduled CI matrix runs them with ``-m nightly``.
"""

from __future__ import annotations

import random
from functools import lru_cache

import pytest

from repro.apps.adapt import AdaptConfig
from repro.harness.experiment import run_app
from repro.machine import Machine, MachineConfig
from repro.machine.sharers import (
    CoarseSharers,
    ExactSharers,
    LimitedPointerSharers,
    sharer_scheme_from_config,
)
from repro.machine.topology import Topology
from repro.models.mpi.matchq import ANY, MatchQueue
from repro.models.registry import run_program
from repro.obs import check_sync

MODELS = ("mpi", "shmem", "sas", "hybrid")

# P=32 and P=64 run in tier-1; the P=128 column is nightly-only
PROCS = [32, 64, pytest.param(128, marks=pytest.mark.nightly)]

_WL = AdaptConfig(mesh_n=8, phases=2, solver_iters=2)


@lru_cache(maxsize=None)
def _traced(model: str, nprocs: int):
    """One traced run per (model, P), shared by the conservation checks."""
    return run_app("adapt", model, nprocs, _WL, trace=True)


# ---------------------------------------------------------------------------
# flow conservation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("nprocs", PROCS)
@pytest.mark.parametrize("model", MODELS)
def test_router_flow_conservation(model, nprocs):
    """Bytes into every router == bytes out of it, per the traced stream.

    Each ``net`` event is replayed over the topology's routing table; a
    router accumulates inflow from hub-out and inbound cube links and
    outflow to hub-in and outbound cube links.  Any broken or
    non-contiguous route (a regression in the deep-hypercube tables)
    breaks the balance.
    """
    result = _traced(model, nprocs)
    topo = Topology(MachineConfig(nprocs=nprocs))
    inflow = [0] * topo.nrouters
    outflow = [0] * topo.nrouters
    for ev in result.events:
        if ev.kind != "net":
            continue
        for li in topo.route(ev.src, ev.dst):
            link = topo.links[li]
            if link.kind == "hub-out":
                inflow[link.dst] += ev.nbytes
            elif link.kind == "hub-in":
                outflow[link.src] += ev.nbytes
            else:  # cube
                outflow[link.src] += ev.nbytes
                inflow[link.dst] += ev.nbytes
    assert inflow == outflow


@pytest.mark.parametrize("nprocs", PROCS)
@pytest.mark.parametrize("model", ("mpi", "shmem"))
def test_net_events_match_machine_stats(model, nprocs):
    """The traced stream and the machine's counters agree on totals.

    Intra-node copies (``src == dst``) count as messages but never touch
    a network link, so only inter-node events carry billable bytes.
    """
    result = _traced(model, nprocs)
    nets = [ev for ev in result.events if ev.kind == "net"]
    assert len(nets) == result.stats.network_messages
    inter = sum(ev.nbytes for ev in nets if ev.src != ev.dst)
    assert inter == result.stats.network_bytes


@pytest.mark.parametrize("nprocs", PROCS)
def test_sas_bytes_billed_by_directory(nprocs):
    """CC-SAS traffic is coherence-billed: line fetches, no packet events.

    The byte counter must equal the traced per-home line fetches times the
    line size — the directory and the event stream agree independently.
    """
    result = _traced("sas", nprocs)
    assert not [ev for ev in result.events if ev.kind == "net"]
    assert result.stats.network_messages == 0
    cfg = MachineConfig(nprocs=nprocs)
    line = cfg.line_bytes
    moved_bytes = fetched = remote_fetched = 0
    for ev in result.events:
        if ev.kind != "coherence":
            continue
        moved_bytes += ev.nbytes
        homes = ev.attrs.get("homes", {})
        fetched += sum(homes.values())
        node = cfg.node_of_cpu(ev.src)
        remote_fetched += sum(c for h, c in homes.items() if int(h) != node)
    # every traced access bills exactly its per-home line fetches ...
    assert moved_bytes == fetched * line and moved_bytes > 0
    # ... and the machine's byte counter covers at least the truly remote
    # ones (it additionally bills upgrades and writebacks, which the
    # compact trace schema does not attribute to homes)
    assert result.stats.network_bytes >= remote_fetched * line > 0


# ---------------------------------------------------------------------------
# matching conservation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("nprocs", PROCS)
def test_mpi_send_recv_conservation(nprocs):
    """Every MPI send is received: per-pair counts and bytes balance."""
    result = _traced("mpi", nprocs)
    sends: dict = {}
    recvs: dict = {}
    for ev in result.events:
        if ev.kind == "msg_send":
            c, b = sends.get((ev.src, ev.dst), (0, 0))
            sends[(ev.src, ev.dst)] = (c + 1, b + ev.nbytes)
        elif ev.kind == "msg_recv":
            c, b = recvs.get((ev.src, ev.dst), (0, 0))
            recvs[(ev.src, ev.dst)] = (c + 1, b + ev.nbytes)
    assert sends and sends == recvs


@pytest.mark.parametrize("nprocs", PROCS)
def test_shmem_put_delivery_conservation(nprocs):
    """Every SHMEM put is delivered: one put_done per put, bytes equal."""
    result = _traced("shmem", nprocs)
    puts: dict = {}
    dones: dict = {}
    for ev in result.events:
        if ev.kind == "put":
            c, b = puts.get((ev.src, ev.dst), (0, 0))
            puts[(ev.src, ev.dst)] = (c + 1, b + ev.nbytes)
        elif ev.kind == "put_done":
            c, b = dones.get((ev.src, ev.dst), (0, 0))
            dones[(ev.src, ev.dst)] = (c + 1, b + ev.nbytes)
    assert puts and puts == dones


# ---------------------------------------------------------------------------
# barrier / synchronization invariants
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("nprocs", PROCS)
@pytest.mark.parametrize("model", ("shmem", "sas"))
def test_barrier_generation_monotonic(model, nprocs):
    """Per-rank barrier episode numbers strictly increase in trace order."""
    result = _traced(model, nprocs)
    per_rank: dict = {}
    for ev in result.events:
        if ev.kind == "barrier":
            per_rank.setdefault(ev.src, []).append(ev.attrs["gen"])
    assert per_rank, "expected barrier events in the trace"
    assert set(per_rank) == set(range(nprocs))
    for rank, gens in per_rank.items():
        assert gens == sorted(gens), f"rank {rank} barrier gens not monotone"
        assert len(set(gens)) == len(gens), f"rank {rank} repeated a barrier gen"


@pytest.mark.parametrize("nprocs", PROCS)
@pytest.mark.parametrize("model", MODELS)
def test_sync_checker_clean(model, nprocs):
    """The trace-based synchronization checker accepts every stream."""
    result = _traced(model, nprocs)
    assert check_sync(result.events, nprocs) == []


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


def _fingerprint(result):
    return (result.elapsed_ns, result.rank_results, result.stats.summary())


@pytest.mark.parametrize("nprocs", PROCS)
@pytest.mark.parametrize("model", MODELS)
def test_double_run_bit_identical(model, nprocs):
    """Two fresh runs of one configuration are bit-identical."""
    a = _traced(model, nprocs)
    b = run_app("adapt", model, nprocs, _WL, trace=True)
    assert _fingerprint(a) == _fingerprint(b)
    assert len(a.events) == len(b.events)


@pytest.mark.parametrize("model,nprocs", [("mpi", 32), ("sas", 64), ("hybrid", 32)])
def test_faulted_double_run_bit_identical(model, nprocs):
    """Fault injection is deterministic per seed at high P too."""
    from repro.faults import resolve_profile

    runs = [
        run_app("adapt", model, nprocs, _WL, faults=resolve_profile("drizzle", seed=7))
        for _ in range(2)
    ]
    assert _fingerprint(runs[0]) == _fingerprint(runs[1])
    assert runs[0].fault_summary == runs[1].fault_summary


@pytest.mark.parametrize("profile", ["stress", "bursty-links"])
def test_hybrid_recovery_exercised(profile):
    """Hybrid inherits both runtimes' recovery paths and actually uses them.

    Under i.i.d. loss *and* correlated dim-1 bursts the hybrid run must
    survive (bit-deterministic results) while its fault counters show the
    MPI retransmission/re-subscribe machinery fired.
    """
    from repro.faults import resolve_profile

    result = run_app(
        "adapt", "hybrid", 32, _WL, faults=resolve_profile(profile, seed=7)
    )
    summary = result.fault_summary
    assert summary is not None and summary["total_retries"] > 0
    clean = run_app("adapt", "hybrid", 32, _WL)
    assert result.rank_results == clean.rank_results  # recovery is transparent


# ---------------------------------------------------------------------------
# golden scalar-vs-batched equivalence for the new fast paths
# ---------------------------------------------------------------------------


def _adapt_mpi_run(nprocs: int, derived: dict):
    from repro.apps.adapt import ADAPT_PROGRAMS, build_script

    machine = Machine(MachineConfig(nprocs=nprocs, derived=derived))
    script = build_script(_WL, nprocs)
    result = run_program("mpi", ADAPT_PROGRAMS["mpi"], nprocs, script, machine=machine)
    return result, machine


@pytest.mark.parametrize("nprocs", [64, pytest.param(128, marks=pytest.mark.nightly)])
def test_net_batch_golden_equivalence(nprocs):
    """Batched network transfers == scalar pipeline, bit for bit."""
    on, m_on = _adapt_mpi_run(nprocs, {})
    off, m_off = _adapt_mpi_run(nprocs, {"net_batch": "off"})
    assert _fingerprint(on) == _fingerprint(off)
    assert m_on.network.batch_fast_transfers > 0
    assert m_off.network.batch_fast_transfers == 0  # opt-out restores scalar


@pytest.mark.parametrize("nprocs", [64, pytest.param(128, marks=pytest.mark.nightly)])
def test_mpi_match_batch_golden_equivalence(nprocs):
    """Vectorised match queues == list scan, bit for bit."""
    on, m_on = _adapt_mpi_run(nprocs, {})
    off, m_off = _adapt_mpi_run(nprocs, {"mpi_match_batch": "off"})
    assert _fingerprint(on) == _fingerprint(off)
    counters_off = m_off.mpi_world.match_counters()
    assert counters_off["vector_scans"] == 0  # opt-out restores scalar


@pytest.mark.parametrize(
    "derived",
    [{"net_batch": "off", "mpi_match_batch": "off"}, {"dir_sharers": "coarse"}],
    ids=["all-scalar", "forced-coarse"],
)
def test_combined_derived_overrides_accepted(derived):
    """Override combinations run and stay self-consistent at P=64."""
    result, machine = _adapt_mpi_run(64, dict(derived))
    assert result.elapsed_ns > 0
    if "net_batch" in derived:
        assert machine.network.batch_fast_transfers == 0


# ---------------------------------------------------------------------------
# MatchQueue unit equivalence (randomised scalar-vs-vector)
# ---------------------------------------------------------------------------


def _random_ops(seed: int, n: int):
    rng = random.Random(seed)
    ops = []
    for i in range(n):
        if rng.random() < 0.6:
            src = rng.choice([ANY, rng.randrange(8)])
            tag = rng.choice([ANY, rng.randrange(6)])
            ops.append(("append", i, src, tag))
        else:
            src = rng.choice([ANY, ANY, rng.randrange(8)])
            tag = rng.choice([ANY, rng.randrange(6)])
            ops.append(("pop", src, tag))
    return ops


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_match_queue_vector_equals_scalar(seed):
    """Random wildcard workloads: batch and scalar queues stay in lockstep."""
    fast, slow = MatchQueue(batch=True), MatchQueue(batch=False)
    for op in _random_ops(seed, 600):
        if op[0] == "append":
            _, item, src, tag = op
            fast.append(item, src, tag)
            slow.append(item, src, tag)
        else:
            _, src, tag = op
            assert fast.pop_first(src, tag) == slow.pop_first(src, tag)
        assert len(fast) == len(slow)
    assert list(fast) == list(slow)
    assert fast.vector_scans > 0 and slow.vector_scans == 0


def test_match_queue_wildcard_free_fast_case():
    """The concrete-key vector branch matches FIFO-first-match exactly."""
    fast, slow = MatchQueue(batch=True), MatchQueue(batch=False)
    for i in range(200):
        fast.append(i, i % 7, i % 5)
        slow.append(i, i % 7, i % 5)
    for i in reversed(range(200)):
        assert fast.pop_first(i % 7, i % 5) == slow.pop_first(i % 7, i % 5)
    assert len(fast) == 0 and len(slow) == 0


# ---------------------------------------------------------------------------
# sharer-scheme units
# ---------------------------------------------------------------------------


def test_exact_scheme_width_checked():
    with pytest.raises(ValueError, match="dir_exact_width"):
        sharer_scheme_from_config(
            MachineConfig(nprocs=128, derived={"dir_sharers": "exact"})
        )


def test_auto_scheme_selection():
    assert isinstance(
        sharer_scheme_from_config(MachineConfig(nprocs=64)), ExactSharers
    )
    scheme = sharer_scheme_from_config(MachineConfig(nprocs=128))
    assert isinstance(scheme, CoarseSharers)
    assert scheme.group == 2 and scheme.bits == 64


def test_coarse_scheme_bills_whole_groups():
    import numpy as np

    scheme = CoarseSharers(group=4, nprocs=16)
    row = np.zeros(16, dtype=bool)
    row[5] = True  # one sharer in group 1 -> the whole group is billed
    assert scheme.billable(row, cpu=0, exact_k=1) == 4
    # the writer's own slot is never billed
    assert scheme.billable(row, cpu=4, exact_k=1) == 3


def test_limited_pointer_broadcast_on_overflow():
    import numpy as np

    scheme = LimitedPointerSharers(pointers=2, nprocs=16)
    row = np.zeros(16, dtype=bool)
    row[[1, 2]] = True
    assert scheme.billable(row, cpu=0, exact_k=2) == 2  # fits the pointers
    row[[3, 4]] = True
    assert scheme.billable(row, cpu=0, exact_k=4) == 15  # overflow: broadcast


def test_unknown_scheme_rejected():
    with pytest.raises(ValueError, match="unknown dir_sharers"):
        sharer_scheme_from_config(
            MachineConfig(nprocs=8, derived={"dir_sharers": "bogus"})
        )


# ---------------------------------------------------------------------------
# experiment-cache regression: full run signature in the key
# ---------------------------------------------------------------------------


def test_script_cache_keys_on_full_run_signature():
    """Placement/fault variants must not alias one cached script object."""
    from repro.harness import experiment

    experiment._script_cache.clear()
    run_app("adapt", "mpi", 8, _WL)
    run_app("adapt", "mpi", 8, _WL, placement="round-robin")
    from repro.faults import resolve_profile

    run_app("adapt", "mpi", 8, _WL, faults=resolve_profile("drizzle", seed=3))
    keys = list(experiment._script_cache)
    assert len(keys) == 3, keys  # distinct placement/faults -> distinct keys
    run_app("adapt", "mpi", 8, _WL)  # identical signature -> cache hit
    assert len(experiment._script_cache) == 3
