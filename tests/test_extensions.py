"""Tests for the extension features: 1:3 mixed-mode refinement, SHMEM
strided transfers and finc, SAS gather/scatter, MPI reduce_scatter, and
the SAS barrier variants."""

import numpy as np
import pytest

from repro.machine import Machine, MachineConfig
from repro.mesh import close_marks, distance_band_marks, refine, structured_mesh
from repro.mesh.adapt import adapt_phase
from repro.mesh.quality import mesh_quality, triangle_areas
from repro.models.registry import run_program


class TestMixedModeRefinement:
    def test_two_marks_split_1to3(self):
        m = structured_mesh(4)
        tid = m.alive_tris()[5]
        e0, e1, _ = m.tri_edges(tid)
        rep = refine(m, {e0, e1}, mode="mixed")
        m.validate()
        assert rep.refined_1to3 == 1
        assert not m.alive[tid]
        assert len(m.children[tid]) == 3
        assert tid in m.green  # 1:3 is anisotropic: dissolved next phase

    def test_all_three_rotations(self):
        for which in range(3):
            m = structured_mesh(4)
            tid = m.alive_tris()[9]
            edges = m.tri_edges(tid)
            marks = {edges[i] for i in range(3) if i != which}
            rep = refine(m, marks, mode="mixed")
            m.validate()
            assert rep.refined_1to3 == 1
            assert triangle_areas(m).sum() == pytest.approx(1.0)

    def test_mixed_closure_is_identity(self):
        m = structured_mesh(4)
        tid = m.alive_tris()[0]
        e0, e1, _ = m.tri_edges(tid)
        assert close_marks(m, {e0, e1}, mode="mixed") == {e0, e1}

    def test_unknown_mode_rejected(self):
        m = structured_mesh(2)
        with pytest.raises(ValueError, match="mode"):
            close_marks(m, set(), mode="blue")

    def test_red_green_still_rejects_two_marks(self):
        m = structured_mesh(2)
        tid = m.alive_tris()[0]
        e0, e1, _ = m.tri_edges(tid)
        with pytest.raises(ValueError, match="close_marks"):
            refine(m, {e0, e1}, mode="red-green")

    def test_mixed_mode_full_run_fewer_elements_same_quality(self):
        results = {}
        for mode in ("red-green", "mixed"):
            m = structured_mesh(8)
            for phase in range(5):
                xf = 0.1 + 0.15 * phase
                adapt_phase(
                    m,
                    lambda mesh, f=xf: distance_band_marks(
                        mesh, lambda x, y: x - f, 0.05, max_level=3
                    ),
                    lambda mesh, f=xf: {
                        t
                        for t in mesh.alive_tris()
                        if abs(
                            mesh.verts_array()[list(mesh.tri_verts(t))][:, 0].mean() - f
                        )
                        > 0.2
                    },
                    validate=True,
                    mode=mode,
                )
            results[mode] = (m.num_triangles, mesh_quality(m).min_angle_deg)
        assert results["mixed"][0] < results["red-green"][0]
        assert results["mixed"][1] > 15.0  # quality still bounded


class TestShmemStrided:
    def test_iput_scatters_with_stride(self):
        def program(ctx):
            a = ctx.salloc("a", (20,), np.float64)
            if ctx.rank == 0:
                yield from ctx.iput(a, 1, np.array([1.0, 2.0, 3.0]), target_stride=5, offset=2)
            yield from ctx.barrier_all()
            local = a.local(1)
            return (local[2], local[7], local[12], local[3])

        res = run_program("shmem", program, 2)
        assert res.rank_results[1] == (1.0, 2.0, 3.0, 0.0)

    def test_iget_gathers_with_stride(self):
        def program(ctx):
            a = ctx.salloc("a", (16,), np.float64)
            a.local(ctx.rank)[:] = np.arange(16) + 100 * ctx.rank
            yield from ctx.barrier_all()
            got = yield from ctx.iget(a, (ctx.rank + 1) % ctx.nprocs, source_stride=4, count=4)
            return got.tolist()

        res = run_program("shmem", program, 2)
        assert res.rank_results[0] == [100.0, 104.0, 108.0, 112.0]

    def test_iput_unit_stride_delegates_to_put(self):
        def program(ctx):
            a = ctx.salloc("a", (8,), np.float64)
            yield from ctx.iput(a, ctx.rank, np.ones(8), target_stride=1)
            yield from ctx.quiet()
            return float(a.local(ctx.rank).sum())

        res = run_program("shmem", program, 1)
        assert res.rank_results[0] == 8.0

    def test_iput_bounds_checked(self):
        def program(ctx):
            a = ctx.salloc("a", (8,), np.float64)
            yield from ctx.iput(a, 0, np.ones(4), target_stride=3, offset=0)

        with pytest.raises(IndexError):
            run_program("shmem", program, 1)

    def test_iput_costs_more_than_put_per_byte(self):
        """Strided remote stores cannot pipeline: line per element."""

        def strided(ctx):
            a = ctx.salloc("a", (4096,), np.float64)
            if ctx.rank == 0:
                yield from ctx.iput(a, 1, np.zeros(512), target_stride=8)
                yield from ctx.quiet()
            yield from ctx.barrier_all()

        def contiguous(ctx):
            a = ctx.salloc("a", (4096,), np.float64)
            if ctx.rank == 0:
                yield from ctx.put(a, 1, np.zeros(512))
                yield from ctx.quiet()
            yield from ctx.barrier_all()

        t_str = run_program("shmem", strided, 2).elapsed_ns
        t_con = run_program("shmem", contiguous, 2).elapsed_ns
        assert t_str > t_con

    def test_finc(self):
        def program(ctx):
            c = ctx.salloc("c", (1,), np.int64)
            old = yield from ctx.atomic_finc(c, 0, 0)
            yield from ctx.barrier_all()
            return int(c.local(0)[0])

        res = run_program("shmem", program, 4)
        assert all(v == 4 for v in res.rank_results)


class TestSasGatherScatter:
    def test_roundtrip(self):
        def program(ctx):
            x = ctx.shalloc("x", (64,), np.float64)
            idx = np.array([1, 17, 33, 63])
            if ctx.rank == 0:
                yield from ctx.swrite_idx(x, idx, [10.0, 20.0, 30.0, 40.0])
            yield from ctx.barrier()
            got = yield from ctx.sread_idx(x, idx)
            return got.tolist()

        res = run_program("sas", program, 2)
        assert res.rank_results == [[10.0, 20.0, 30.0, 40.0]] * 2

    def test_scatter_size_mismatch(self):
        def program(ctx):
            x = ctx.shalloc("x", (8,), np.float64)
            yield from ctx.swrite_idx(x, [0, 1], [1.0])

        with pytest.raises(ValueError, match="mismatch"):
            run_program("sas", program, 1)

    def test_out_of_range_rejected(self):
        def program(ctx):
            x = ctx.shalloc("x", (8,), np.float64)
            yield from ctx.sread_idx(x, [99])

        with pytest.raises(IndexError):
            run_program("sas", program, 1)


class TestMpiReduceScatter:
    @pytest.mark.parametrize("n", (1, 2, 3, 4, 8))
    def test_scalar_sums(self, n):
        def program(ctx):
            vals = [ctx.rank * 10 + d for d in range(ctx.nprocs)]
            got = yield from ctx.reduce_scatter(vals)
            return got

        res = run_program("mpi", program, n)
        for d, got in enumerate(res.rank_results[:n]):
            assert got == sum(r * 10 + d for r in range(n))

    def test_array_values(self):
        def program(ctx):
            vals = [np.full(4, float(ctx.rank + d)) for d in range(ctx.nprocs)]
            got = yield from ctx.reduce_scatter(vals)
            return float(got[0])

        res = run_program("mpi", program, 3)
        for d, got in enumerate(res.rank_results):
            assert got == sum(r + d for r in range(3))

    def test_bad_length(self):
        def program(ctx):
            yield from ctx.reduce_scatter([1])

        with pytest.raises(ValueError):
            run_program("mpi", program, 2)


class TestSasBarrierKinds:
    @pytest.mark.parametrize("kind", ("tree", "central"))
    def test_both_kinds_synchronise(self, kind):
        def program(ctx):
            yield from ctx.compute(500.0 * ctx.rank)
            yield from ctx.barrier(kind=kind)
            return ctx.now

        res = run_program("sas", program, 8)
        assert all(t >= 500.0 * 7 for t in res.rank_results)

    def test_machine_default_from_derived(self):
        cfg = MachineConfig(nprocs=4)
        cfg.derived["sas_barrier"] = "central"
        machine = Machine(cfg)

        def program(ctx):
            yield from ctx.barrier()  # picks up the derived default
            return True

        res = run_program("sas", program, 4, machine=machine)
        assert all(res.rank_results)

    def test_unknown_kind_rejected(self):
        def program(ctx):
            yield from ctx.barrier(kind="mystery")

        with pytest.raises(ValueError):
            run_program("sas", program, 2)

    def test_central_costs_more_under_simultaneous_arrival(self):
        """With zero skew, the centralised barrier's serialisation shows."""

        def program(ctx, kind):
            for _ in range(20):
                yield from ctx.barrier(kind=kind)
            return ctx.now

        t_tree = max(run_program("sas", program, 32, "tree").rank_results)
        t_central = max(run_program("sas", program, 32, "central").rank_results)
        assert t_central > t_tree
