"""Tests for the unstructured-mesh substrate: structure, refinement,
coarsening, adaptation invariants (with hypothesis), quality, IO."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import (
    close_marks,
    coarsen,
    delaunay_mesh,
    distance_band_marks,
    dual_graph,
    gradient_indicator,
    mesh_quality,
    partition_boundary_edges,
    refine,
    structured_mesh,
    triangle_areas,
)
from repro.mesh.adapt import adapt_phase
from repro.mesh.error import mark_by_threshold
from repro.mesh.io import load_mesh, save_mesh
from repro.mesh.mesh2d import TriMesh, edge_key
from repro.mesh.refine import (
    dissolve_green_families,
    hanging_edge_marks,
    refine_cascade,
)


class TestTriMesh:
    def test_structured_counts(self):
        m = structured_mesh(4)
        assert m.num_triangles == 32
        assert m.num_vertices == 25
        m.validate()

    def test_rectangular_mesh(self):
        m = structured_mesh(4, 2, lx=2.0, ly=1.0)
        assert m.num_triangles == 16
        assert abs(triangle_areas(m).sum() - 2.0) < 1e-12

    def test_bad_mesh_rejected(self):
        with pytest.raises(ValueError):
            TriMesh(np.zeros((3, 2)), [(0, 1, 1)])  # degenerate
        with pytest.raises(ValueError):
            TriMesh(np.zeros((2, 2)), [(0, 1, 2)])  # missing vertex
        with pytest.raises(ValueError):
            structured_mesh(0)

    def test_edges_interior_and_boundary(self):
        m = structured_mesh(2)
        edges = m.edges()
        boundary = m.boundary_edges()
        assert all(len(ts) <= 2 for ts in edges.values())
        assert len(boundary) == 8  # 2 per side

    def test_edge_key_canonical(self):
        assert edge_key(5, 2) == (2, 5) == edge_key(2, 5)

    def test_midpoint_memoised(self):
        m = structured_mesh(2)
        e = next(iter(m.edges()))
        v1 = m.midpoint(e)
        v2 = m.midpoint(e)
        assert v1 == v2
        assert m.has_midpoint(e)

    def test_kill_revive_guards(self):
        m = structured_mesh(2)
        m.kill(0)
        with pytest.raises(ValueError):
            m.kill(0)
        m.revive(0)
        with pytest.raises(ValueError):
            m.revive(0)

    def test_delaunay_valid(self):
        m = delaunay_mesh(50, seed=3)
        m.validate()
        assert m.num_triangles > 50


class TestRefine:
    def test_full_refine_quadruples(self):
        m = structured_mesh(2)
        marks = close_marks(m, set(m.edges()))
        rep = refine(m, marks)
        assert rep.refined_1to4 == 8
        assert rep.refined_1to2 == 0
        assert m.num_triangles == 32
        m.validate()

    def test_single_mark_gives_green(self):
        m = structured_mesh(2)
        boundary = sorted(m.boundary_edges())
        marks = close_marks(m, {boundary[0]})
        rep = refine(m, marks)
        assert rep.refined_1to2 == 1
        assert rep.refined_1to4 == 0
        m.validate()

    def test_closure_eliminates_two_mark_triangles(self):
        m = structured_mesh(4)
        tid = m.alive_tris()[5]
        e1, e2, _ = m.tri_edges(tid)
        closed = close_marks(m, {e1, e2})
        for t in m.alive_tris():
            count = sum(1 for e in m.tri_edges(t) if e in closed)
            assert count in (0, 1, 3)

    def test_refine_rejects_unclosed(self):
        m = structured_mesh(2)
        tid = m.alive_tris()[0]
        e1, e2, _ = m.tri_edges(tid)
        with pytest.raises(ValueError, match="close_marks"):
            refine(m, {e1, e2})

    def test_area_preserved(self):
        m = structured_mesh(4)
        before = triangle_areas(m).sum()
        marks = close_marks(m, distance_band_marks(m, lambda x, y: x - 0.5, 0.1))
        refine(m, marks)
        assert triangle_areas(m).sum() == pytest.approx(before)

    def test_children_track_parent_and_level(self):
        m = structured_mesh(2)
        marks = close_marks(m, set(m.edges()))
        rep = refine(m, marks)
        for parent, kids in rep.families.items():
            for k in kids:
                assert m.parent[k] == parent
                assert m.level[k] == m.level[parent] + 1

    def test_dissolve_greens_restores_parents(self):
        m = structured_mesh(2)
        boundary = sorted(m.boundary_edges())
        rep = refine(m, close_marks(m, {boundary[0]}))
        assert len(m.green) == 1
        dissolved = dissolve_green_families(m)
        assert len(dissolved) == 1
        assert not m.green
        m.validate()

    def test_hanging_marks_found_after_dissolve(self):
        m = structured_mesh(2)
        # fully refine one triangle; its neighbours go green
        tid = m.alive_tris()[0]
        marks = close_marks(m, set(m.tri_edges(tid)))
        refine(m, marks)
        dissolve_green_families(m)
        hanging = hanging_edge_marks(m)
        assert hanging  # the formerly-green edges must be re-marked
        refine_cascade(m, hanging)
        m.validate()

    def test_cascade_handles_multilevel(self):
        """Marks landing on sub-edges of coarse triangles must cascade."""
        m = structured_mesh(4)
        for front in (0.25, 0.3, 0.35, 0.45):
            marks = distance_band_marks(m, lambda x, y, f=front: x - f, 0.07, max_level=3)
            marks |= hanging_edge_marks(m)
            dissolve_green_families(m)
            marks |= hanging_edge_marks(m)
            refine_cascade(m, marks)
            m.validate()


class TestCoarsen:
    def make_refined(self):
        m = structured_mesh(4)
        marks = close_marks(m, set(m.edges()))
        refine(m, marks)
        return m

    def test_full_coarsen_restores_original(self):
        m = self.make_refined()
        rep = coarsen(m, set(m.alive_tris()))
        assert rep.families_merged == 32
        assert m.num_triangles == 32
        m.validate()

    def test_partial_candidates_no_merge(self):
        m = self.make_refined()
        some = set(m.alive_tris()[:3])  # incomplete families
        rep = coarsen(m, some)
        assert rep.families_merged == 0

    def test_batch_conformity(self):
        """Coarsening respects neighbours that keep their refinement."""
        m = structured_mesh(4)
        refine(m, close_marks(m, set(m.edges())))
        # ask to coarsen only the left half
        verts = m.verts_array()
        cands = {
            t
            for t in m.alive_tris()
            if verts[list(m.tri_verts(t))][:, 0].mean() < 0.5
        }
        coarsen(m, cands)
        m.validate()

    def test_coarsen_then_area_preserved(self):
        m = self.make_refined()
        before = triangle_areas(m).sum()
        coarsen(m, set(m.alive_tris()))
        assert triangle_areas(m).sum() == pytest.approx(before)

    def test_green_families_not_coarsened_here(self):
        m = structured_mesh(2)
        boundary = sorted(m.boundary_edges())
        refine(m, close_marks(m, {boundary[0]}))
        rep = coarsen(m, set(m.alive_tris()))
        assert rep.families_merged == 0  # greens are dissolved, not coarsened


class TestAdaptPhase:
    def test_moving_front_bounded_quality(self):
        m = structured_mesh(8)
        angles_seen = []
        for phase in range(6):
            xf = 0.1 + 0.15 * phase

            def marker(mesh, f=xf):
                return distance_band_marks(mesh, lambda x, y: x - f, 0.05, max_level=3)

            def coarsener(mesh, f=xf):
                verts = mesh.verts_array()
                return {
                    t
                    for t in mesh.alive_tris()
                    if abs(verts[list(mesh.tri_verts(t))][:, 0].mean() - f) > 0.2
                }

            adapt_phase(m, marker, coarsener, validate=True)
            q = mesh_quality(m)
            angles_seen.append(q.min_angle_deg)
            assert q.total_area == pytest.approx(1.0)
        # red-green discipline: quality stabilises (greens never re-bisected),
        # so the worst angle stops degrading after the first green generation
        assert min(angles_seen) == pytest.approx(angles_seen[1], abs=1e-6) or min(
            angles_seen
        ) >= angles_seen[1] - 1e-6
        assert min(angles_seen) > 15.0  # bounded well away from degenerate

    def test_report_fields(self):
        m = structured_mesh(4)
        rep = adapt_phase(
            m, lambda mesh: distance_band_marks(mesh, lambda x, y: x - 0.5, 0.1)
        )
        assert rep.triangles_after > rep.triangles_before
        assert rep.refinement.refined > 0
        assert rep.growth > 1.0

    @settings(max_examples=20, deadline=None)
    @given(
        fronts=st.lists(
            st.floats(min_value=0.05, max_value=0.95), min_size=1, max_size=4
        ),
        n=st.integers(min_value=2, max_value=6),
    )
    def test_property_adaptation_always_conforming(self, fronts, n):
        """Invariant: any sequence of band adaptations keeps the mesh valid
        and area-preserving."""
        m = structured_mesh(n)
        for f in fronts:
            adapt_phase(
                m,
                lambda mesh, f=f: distance_band_marks(
                    mesh, lambda x, y: x - f, 0.08, max_level=2
                ),
                lambda mesh, f=f: {
                    t
                    for t in mesh.alive_tris()
                    if abs(
                        mesh.verts_array()[list(mesh.tri_verts(t))][:, 0].mean() - f
                    )
                    > 0.25
                },
                validate=True,
            )
            assert triangle_areas(m).sum() == pytest.approx(1.0)


class TestIndicators:
    def test_gradient_indicator_peaks_at_jump(self):
        m = structured_mesh(4)
        values = (m.verts_array()[:, 0] > 0.5).astype(float)
        errors = gradient_indicator(m, values)
        marked = mark_by_threshold(errors, 0.01)
        assert marked
        verts = m.verts_array()
        for a, b in marked:
            assert abs((verts[a][0] + verts[b][0]) / 2 - 0.5) < 0.3

    def test_gradient_indicator_size_check(self):
        m = structured_mesh(2)
        with pytest.raises(ValueError):
            gradient_indicator(m, np.zeros(3))

    def test_band_marks_respect_max_level(self):
        m = structured_mesh(2)
        for _ in range(3):
            marks = distance_band_marks(m, lambda x, y: x - 0.5, 0.3, max_level=1)
            if not marks:
                break
            refine(m, close_marks(m, marks))
        assert max(m.level[t] for t in m.alive_tris()) <= 2  # level-1 + greens

    def test_band_requires_positive(self):
        m = structured_mesh(2)
        with pytest.raises(ValueError):
            distance_band_marks(m, lambda x, y: x, 0.0)


class TestDualAndIO:
    def test_dual_graph_symmetry(self):
        m = structured_mesh(3)
        tids, adj = dual_graph(m)
        for t, neighbours in adj.items():
            for u in neighbours:
                assert t in adj[u]

    def test_partition_boundary_edges(self):
        m = structured_mesh(2)
        verts = m.verts_array()
        owner = {
            t: (0 if verts[list(m.tri_verts(t))][:, 0].mean() < 0.5 else 1)
            for t in m.alive_tris()
        }
        boundary = partition_boundary_edges(m, owner)
        assert (0, 1) in boundary
        assert len(boundary[(0, 1)]) >= 2

    def test_save_load_roundtrip(self, tmp_path):
        m = structured_mesh(3)
        refine(m, close_marks(m, set(list(m.edges())[:4])))
        path = tmp_path / "mesh.npz"
        save_mesh(m, str(path))
        m2 = load_mesh(str(path))
        m2.validate()
        assert m2.num_triangles == m.num_triangles
        assert triangle_areas(m2).sum() == pytest.approx(triangle_areas(m).sum())
