"""Tests for the PLUM load balancer: policy, remap, costs, orchestration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import close_marks, distance_band_marks, refine, structured_mesh
from repro.mesh.adapt import adapt_phase
from repro.plum import (
    ImbalancePolicy,
    PlumBalancer,
    reassign_greedy,
    reassign_optimal,
    remap_cost,
    similarity_matrix,
)
from repro.plum.balancer import inherit_ownership
from repro.plum.remap import apply_assignment


class TestPolicy:
    def test_imbalance_math(self):
        assert ImbalancePolicy.imbalance([1, 1, 1, 1]) == 1.0
        assert ImbalancePolicy.imbalance([2, 1, 1, 0]) == 2.0
        assert ImbalancePolicy.imbalance([]) == 1.0
        assert ImbalancePolicy.imbalance([0, 0]) == 1.0

    def test_threshold_gate(self):
        pol = ImbalancePolicy(1.25)
        assert not pol.should_rebalance([1.2, 1.0, 1.0, 1.0])
        assert pol.should_rebalance([2.0, 1.0, 1.0, 1.0])

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            ImbalancePolicy(0.9)


class TestSimilarityAndReassignment:
    def test_similarity_matrix(self):
        S = similarity_matrix([0, 0, 1, 1], [1, 1, 0, 1], [1, 1, 1, 1], 2)
        assert S[0, 1] == 2 and S[1, 0] == 1 and S[1, 1] == 1 and S[0, 0] == 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            similarity_matrix([0], [0, 1], [1, 1], 2)

    def test_greedy_keeps_obvious_diagonal(self):
        # new part 0 is mostly old proc 1's data and vice versa
        S = np.array([[1.0, 9.0], [8.0, 2.0]])
        assign = reassign_greedy(S)
        assert list(assign) == [1, 0]

    def test_optimal_matches_greedy_on_easy_case(self):
        S = np.diag([5.0, 7.0, 3.0])
        assert list(reassign_greedy(S)) == [0, 1, 2]
        assert list(reassign_optimal(S)) == [0, 1, 2]

    def test_optimal_at_least_as_good(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            S = rng.uniform(0, 10, (6, 6))
            g = S[reassign_greedy(S), np.arange(6)].sum()
            o = S[reassign_optimal(S), np.arange(6)].sum()
            assert o >= g - 1e-9

    def test_assignment_is_permutation(self):
        rng = np.random.default_rng(5)
        S = rng.uniform(0, 1, (8, 8))
        for fn in (reassign_greedy, reassign_optimal):
            assign = fn(S)
            assert sorted(assign) == list(range(8))

    def test_apply_assignment(self):
        part = np.array([0, 1, 2, 0])
        assign = np.array([2, 0, 1])
        assert list(apply_assignment(part, assign)) == [2, 0, 1, 2]


class TestRemapCost:
    def test_no_movement_zero_cost(self):
        c = remap_cost([0, 1, 1], [0, 1, 1], [1, 1, 1], 2)
        assert c.total_v == 0 and c.max_v == 0 and c.max_sr == 0

    def test_simple_move(self):
        c = remap_cost([0, 0, 1], [1, 0, 1], [2.0, 1.0, 1.0], 2)
        assert c.total_v == 2.0
        assert c.max_v == 2.0
        assert c.max_sr == 1  # proc 0 sends to one partner; proc 1 receives from one
        assert c.moved_elements == 1

    def test_max_sr_counts_partners(self):
        # proc 0 scatters to 3 different processors
        c = remap_cost([0, 0, 0], [1, 2, 3], [1, 1, 1], 4)
        assert c.max_sr == 3

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=40),
        nparts=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=99),
    )
    def test_property_reassignment_never_hurts(self, n, nparts, seed):
        """Invariants: optimal reassignment moves no more weight than taking
        the new partition's labels at face value, and greedy retains at
        least half of what optimal retains (the greedy-matching bound)."""
        rng = np.random.default_rng(seed)
        cur = rng.integers(0, nparts, n)
        new = rng.integers(0, nparts, n)
        w = rng.uniform(0.5, 2.0, n)
        S = similarity_matrix(cur, new, w, nparts)
        naive = remap_cost(cur, new, w, nparts).total_v
        opt = apply_assignment(new, reassign_optimal(S))
        assert remap_cost(cur, opt, w, nparts).total_v <= naive + 1e-9
        retained_opt = S[reassign_optimal(S), np.arange(nparts)].sum()
        retained_greedy = S[reassign_greedy(S), np.arange(nparts)].sum()
        assert retained_greedy >= retained_opt / 2 - 1e-9


class TestBalancer:
    def adapted_mesh(self):
        m = structured_mesh(6)
        refine(
            m,
            close_marks(m, distance_band_marks(m, lambda x, y: x - 0.3, 0.1)),
        )
        return m

    def test_initial_partition_covers_alive(self):
        m = self.adapted_mesh()
        bal = PlumBalancer(nparts=4)
        owner = bal.initial_partition(m)
        assert set(owner) == set(m.alive_tris())
        assert set(owner.values()) == set(range(4))

    def test_rebalance_reduces_imbalance(self):
        m = structured_mesh(6)
        bal = PlumBalancer(nparts=4, policy=ImbalancePolicy(1.1))
        owner = bal.initial_partition(m)
        refine(m, close_marks(m, distance_band_marks(m, lambda x, y: x - 0.2, 0.1)))
        owner = inherit_ownership(m, owner)
        res = bal.rebalance(m, owner)
        assert res.rebalanced
        assert res.imbalance_after < res.imbalance_before
        assert res.cost is not None
        assert set(res.owner) == set(m.alive_tris())

    def test_below_threshold_no_rebalance(self):
        m = structured_mesh(6)
        bal = PlumBalancer(nparts=4, policy=ImbalancePolicy(5.0))
        owner = bal.initial_partition(m)
        res = bal.rebalance(m, owner)
        assert not res.rebalanced
        assert res.owner == owner

    def test_force_rebalances_anyway(self):
        m = structured_mesh(6)
        bal = PlumBalancer(nparts=4, policy=ImbalancePolicy(5.0))
        owner = bal.initial_partition(m)
        res = bal.rebalance(m, owner, force=True)
        assert res.rebalanced

    def test_missing_owner_detected(self):
        m = structured_mesh(4)
        bal = PlumBalancer(nparts=2)
        with pytest.raises(KeyError):
            bal.rebalance(m, {})

    def test_bad_args(self):
        with pytest.raises(ValueError):
            PlumBalancer(nparts=0)
        with pytest.raises(ValueError):
            PlumBalancer(nparts=2, reassigner="magic")

    def test_inherit_ownership_through_adaptation(self):
        m = structured_mesh(6)
        bal = PlumBalancer(nparts=3)
        owner = bal.initial_partition(m)
        for phase in range(4):
            xf = 0.2 + 0.2 * phase
            adapt_phase(
                m,
                lambda mesh, f=xf: distance_band_marks(mesh, lambda x, y: x - f, 0.06, max_level=2),
                lambda mesh, f=xf: {
                    t
                    for t in mesh.alive_tris()
                    if abs(mesh.verts_array()[list(mesh.tri_verts(t))][:, 0].mean() - f) > 0.25
                },
            )
            owner = inherit_ownership(m, owner)
            assert set(owner) == set(m.alive_tris())
            owner = bal.rebalance(m, owner).owner

    def test_history_recorded(self):
        m = structured_mesh(4)
        bal = PlumBalancer(nparts=2)
        owner = bal.initial_partition(m)
        bal.rebalance(m, owner)
        bal.rebalance(m, owner, force=True)
        assert len(bal.history) == 2
