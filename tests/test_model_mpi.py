"""Integration tests for the MPI runtime (point-to-point + collectives)."""

import numpy as np
import pytest

from repro.models.registry import run_program

NPROC_SET = (1, 2, 3, 4, 5, 8, 13, 16)


def run_mpi(program, nprocs, *args, **kwargs):
    return run_program("mpi", program, nprocs, *args, **kwargs)


class TestPointToPoint:
    def test_ring_sendrecv(self):
        def program(ctx):
            n = ctx.nprocs
            data = np.arange(8, dtype=np.float64) + ctx.rank
            got = yield from ctx.sendrecv(data, (ctx.rank + 1) % n, (ctx.rank - 1) % n)
            return float(got[0])

        for n in (2, 3, 8):
            res = run_mpi(program, n)
            assert res.rank_results == [float((r - 1) % n) for r in range(n)]

    def test_eager_small_message(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(b"hello", 1)
                return "sent"
            got = yield from ctx.recv(0)
            return got

        res = run_mpi(program, 2)
        assert res.rank_results == ["sent", b"hello"]

    def test_rendezvous_large_message(self):
        def program(ctx):
            big = np.arange(50_000, dtype=np.float64)
            if ctx.rank == 0:
                yield from ctx.send(big, 1)
                return None
            got = yield from ctx.recv(0)
            return float(got.sum())

        res = run_mpi(program, 2)
        assert res.rank_results[1] == pytest.approx(float(np.arange(50_000).sum()))

    def test_rendezvous_sender_blocks_until_recv_posted(self):
        recv_post_delay = 500_000.0

        def program(ctx):
            big = np.zeros(100_000)
            if ctx.rank == 0:
                yield from ctx.send(big, 1)
                return ctx.now
            yield from ctx.compute(recv_post_delay)
            yield from ctx.recv(0)
            return None

        res = run_mpi(program, 2)
        assert res.rank_results[0] >= recv_post_delay

    def test_eager_sender_does_not_block(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(b"x" * 64, 1)
                return ctx.now
            yield from ctx.compute(1_000_000.0)
            yield from ctx.recv(0)
            return None

        res = run_mpi(program, 2)
        assert res.rank_results[0] < 1_000_000.0

    def test_tag_matching_out_of_order(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send("first", 1, tag=1)
                yield from ctx.send("second", 1, tag=2)
                return None
            second = yield from ctx.recv(0, tag=2)
            first = yield from ctx.recv(0, tag=1)
            return (first, second)

        res = run_mpi(program, 2)
        assert res.rank_results[1] == ("first", "second")

    def test_non_overtaking_same_tag(self):
        def program(ctx):
            if ctx.rank == 0:
                for i in range(5):
                    yield from ctx.send(i, 1, tag=7)
                return None
            out = []
            for _ in range(5):
                got = yield from ctx.recv(0, tag=7)
                out.append(got)
            return out

        res = run_mpi(program, 2)
        assert res.rank_results[1] == [0, 1, 2, 3, 4]

    def test_any_source_any_tag_and_status(self):
        from repro.models.mpi import ANY_SOURCE, ANY_TAG, Status

        def program(ctx):
            if ctx.rank != 0:
                yield from ctx.send(ctx.rank * 10, 0, tag=ctx.rank)
                return None
            seen = {}
            for _ in range(ctx.nprocs - 1):
                st = Status()
                got = yield from ctx.recv(ANY_SOURCE, ANY_TAG, status=st)
                seen[st.source] = (got, st.tag)
            return seen

        res = run_mpi(program, 4)
        assert res.rank_results[0] == {1: (10, 1), 2: (20, 2), 3: (30, 3)}

    def test_isend_irecv_waitall(self):
        def program(ctx):
            n = ctx.nprocs
            reqs = []
            for dst in range(n):
                if dst != ctx.rank:
                    r = yield from ctx.isend(ctx.rank, dst, tag=3)
                    reqs.append(r)
            recvs = []
            for src in range(n):
                if src != ctx.rank:
                    r = yield from ctx.irecv(src, tag=3)
                    recvs.append(r)
            got = yield from ctx.waitall(recvs)
            yield from ctx.waitall(reqs)
            return sorted(got)

        res = run_mpi(program, 4)
        for rank, out in enumerate(res.rank_results):
            assert out == sorted(set(range(4)) - {rank})

    def test_waitany_returns_earliest(self):
        def program(ctx):
            if ctx.rank == 0:
                r1 = yield from ctx.irecv(1, tag=1)
                r2 = yield from ctx.irecv(2, tag=2)
                idx, payload = yield from ctx.waitany([r1, r2])
                return (idx, payload)
            yield from ctx.compute(1000.0 if ctx.rank == 2 else 500_000.0)
            yield from ctx.send("from%d" % ctx.rank, 0, tag=ctx.rank)
            return None

        res = run_mpi(program, 3)
        assert res.rank_results[0] == (1, "from2")

    def test_iprobe(self):
        def program(ctx):
            if ctx.rank == 0:
                assert not ctx.iprobe()
                yield from ctx.compute(1_000_000.0)
                assert ctx.iprobe(source=1, tag=9)
                got = yield from ctx.recv(1, tag=9)
                return got
            yield from ctx.send("probe-me", 0, tag=9)
            return None

        res = run_mpi(program, 2)
        assert res.rank_results[0] == "probe-me"

    def test_bad_destination_raises(self):
        def program(ctx):
            yield from ctx.send(1, 99)

        with pytest.raises(ValueError):
            run_mpi(program, 2)


class TestCollectives:
    @pytest.mark.parametrize("n", NPROC_SET)
    def test_bcast(self, n):
        def program(ctx):
            value = {"data": 42} if ctx.rank == 0 else None
            got = yield from ctx.bcast(value, root=0)
            return got["data"]

        res = run_mpi(program, n)
        assert res.rank_results == [42] * n

    @pytest.mark.parametrize("n", NPROC_SET)
    def test_bcast_nonzero_root(self, n):
        root = n - 1

        def program(ctx):
            value = "payload" if ctx.rank == root else None
            got = yield from ctx.bcast(value, root=root)
            return got

        res = run_mpi(program, n)
        assert res.rank_results == ["payload"] * n

    @pytest.mark.parametrize("n", NPROC_SET)
    def test_reduce_sum(self, n):
        def program(ctx):
            got = yield from ctx.reduce(ctx.rank + 1, root=0)
            return got

        res = run_mpi(program, n)
        assert res.rank_results[0] == n * (n + 1) // 2
        assert all(v is None for v in res.rank_results[1:])

    @pytest.mark.parametrize("n", NPROC_SET)
    def test_allreduce_max(self, n):
        def program(ctx):
            got = yield from ctx.allreduce(ctx.rank, op=max)
            return got

        res = run_mpi(program, n)
        assert res.rank_results == [n - 1] * n

    def test_allreduce_numpy_arrays(self):
        def program(ctx):
            vec = np.full(16, float(ctx.rank))
            got = yield from ctx.allreduce(vec)
            return float(got[0])

        res = run_mpi(program, 4)
        assert res.rank_results == [6.0] * 4

    @pytest.mark.parametrize("n", NPROC_SET)
    def test_gather_and_allgather(self, n):
        def program(ctx):
            g = yield from ctx.gather(ctx.rank * 2, root=0)
            ag = yield from ctx.allgather(ctx.rank * 3)
            return (g, ag)

        res = run_mpi(program, n)
        g0, ag0 = res.rank_results[0]
        assert g0 == [2 * i for i in range(n)]
        for g, ag in res.rank_results:
            assert ag == [3 * i for i in range(n)]

    @pytest.mark.parametrize("n", NPROC_SET)
    def test_scatter(self, n):
        def program(ctx):
            values = [i * i for i in range(n)] if ctx.rank == 0 else None
            got = yield from ctx.scatter(values, root=0)
            return got

        res = run_mpi(program, n)
        assert res.rank_results == [i * i for i in range(n)]

    @pytest.mark.parametrize("n", NPROC_SET)
    def test_alltoall(self, n):
        def program(ctx):
            got = yield from ctx.alltoall([(ctx.rank, d) for d in range(n)])
            return got

        res = run_mpi(program, n)
        for rank, got in enumerate(res.rank_results):
            assert got == [(s, rank) for s in range(n)]

    @pytest.mark.parametrize("n", NPROC_SET)
    def test_scan(self, n):
        def program(ctx):
            got = yield from ctx.scan(ctx.rank + 1)
            return got

        res = run_mpi(program, n)
        assert res.rank_results == [r * (r + 1) // 2 + r + 1 for r in range(n)]

    @pytest.mark.parametrize("n", NPROC_SET)
    def test_barrier_synchronises(self, n):
        def program(ctx):
            yield from ctx.compute(1000.0 * ctx.rank)
            yield from ctx.barrier()
            return ctx.now

        res = run_mpi(program, n)
        slowest_compute = 1000.0 * (n - 1)
        assert all(t >= slowest_compute for t in res.rank_results)

    def test_barrier_charges_sync_not_comm(self):
        def program(ctx):
            yield from ctx.compute(1000.0 * ctx.rank)
            yield from ctx.barrier()

        res = run_mpi(program, 4)
        assert res.stats.per_cpu[0].sync_ns > 0


class TestCosts:
    def test_message_cost_scales_with_size(self):
        def program(ctx, nbytes):
            if ctx.rank == 0:
                yield from ctx.send(np.zeros(nbytes // 8), 1)
            else:
                yield from ctx.recv(0)
            return ctx.now

        small = run_mpi(program, 2, 1024).elapsed_ns
        large = run_mpi(program, 2, 1024 * 1024).elapsed_ns
        assert large > small * 5

    def test_stats_counters(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(np.zeros(128), 1)
            else:
                yield from ctx.recv(0)

        res = run_mpi(program, 2)
        assert res.stats.per_cpu[0].msgs_sent == 1
        assert res.stats.per_cpu[0].bytes_sent == 128 * 8
        assert res.stats.per_cpu[1].comm_ns > 0
