"""Differential golden suite: faults off is bit-identical to the pre-PR build.

``tests/golden/faults_off.json`` (written by
``tools/record_faults_golden.py``) fingerprints every faults-off run —
all four models at P in {1, 8, 64} — as recorded *before* the
correlated-fault plane (Gilbert–Elliott burst chains, failure domains,
fault-aware PLUM, collective re-subscribe) landed.  Each test here
re-runs one configuration on the current tree and compares every field
exactly: elapsed nanoseconds (by ``repr``, so float-exact), a SHA-256 of
the per-rank results, the full statistics summary, and the traced event
stream's length and SHA-256.

One intentional delta is baked into the recordings: hybrid's
``global_barrier`` now emits a world-scoped ``barrier`` obs event per
rank (this PR's observability satellite), so the hybrid *event* rows
were re-recorded after that change.  The re-recording was differential
too — elapsed, rank results and stats of every row, and the event
streams of mpi/shmem/sas, were verified byte-equal to the pre-PR build
before committing the file.  Obs events never advance simulated time,
so a timing regression still cannot hide behind the event-row refresh.

P=64 rows carry the ``nightly`` marker so the tier-1 run stays fast.
"""

from __future__ import annotations

import hashlib
import json
import os

import pytest

from repro.apps.adapt import AdaptConfig
from repro.harness.experiment import run_app

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "faults_off.json")

with open(GOLDEN_PATH) as _fh:
    _GOLDEN = json.load(_fh)

_ROWS = {(row["model"], row["nprocs"]): row for row in _GOLDEN["rows"]}

# the CLI "small" preset the recordings were taken with
_WL = AdaptConfig(mesh_n=8, phases=3, solver_iters=6)


def _param(model: str, nprocs: int):
    marks = [pytest.mark.nightly] if nprocs > 8 else []
    return pytest.param(model, nprocs, marks=marks, id=f"{model}-{nprocs}")


CASES = [
    _param(model, nprocs)
    for model in _GOLDEN["models"]
    for nprocs in _GOLDEN["procs"]
]


@pytest.mark.parametrize("model,nprocs", CASES)
def test_faults_off_matches_pre_pr_recording(model, nprocs):
    """A faults-off run reproduces its golden fingerprint field by field."""
    golden = _ROWS[(model, nprocs)]
    result = run_app("adapt", model, nprocs, _WL, trace=True)
    assert repr(result.elapsed_ns) == golden["elapsed_ns"]
    assert (
        hashlib.sha256(repr(result.rank_results).encode()).hexdigest()
        == golden["rank_results_sha256"]
    )
    summary = {k: repr(v) for k, v in sorted(result.stats.summary().items())}
    assert summary == golden["stats_summary"]
    events = result.events or []
    assert len(events) == golden["events"]
    blob = "\n".join(repr(ev) for ev in events).encode()
    assert hashlib.sha256(blob).hexdigest() == golden["events_sha256"]


def test_golden_file_covers_all_models():
    """The recording spans every model x P cell the suite claims to lock."""
    assert set(_GOLDEN["models"]) == {"mpi", "shmem", "sas", "hybrid"}
    assert set(_GOLDEN["procs"]) == {1, 8, 64}
    assert len(_ROWS) == 12
