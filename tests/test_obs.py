"""Tests for the repro.obs subsystem: event schema, exporters, analysis
passes, and the trace-based synchronization checker."""

import json

import numpy as np
import pytest

from repro.harness import run_app
from repro.models.registry import run_program
from repro.obs import (
    Event,
    check_sync,
    comm_matrix,
    format_matrix,
    format_violations,
    from_jsonl,
    phase_breakdown,
    sas_home_matrix,
    size_histogram,
    summarize,
    to_jsonl,
    to_perfetto,
)


def _adapt_workload():
    from repro.apps.adapt import AdaptConfig

    return AdaptConfig(mesh_n=6, phases=2, solver_iters=3)


# ---------------------------------------------------------------------------
# JSONL round trip
# ---------------------------------------------------------------------------


class TestJsonlRoundTrip:
    def test_synthetic_events_identical(self, tmp_path):
        events = [
            Event(0.0, "msg_send", 0, 1, 128, 50.0, {"tag": 7, "eager": True}),
            Event(10.5, "put", 1, 2, 64, 0.0, {"sym": "x", "lo": 0, "hi": 8}),
            Event(20.0, "barrier", 0, -1, 0, 300.0, {"gen": 3, "name": "all"}),
            Event(25.0, "phase", 2, -1, 0, 1000.0, {"name": "solve"}),
            Event(30.0, "coherence", 3, -1, 256, 40.0,
                  {"write": False, "homes": {"0": 1, "1": 1}}),
        ]
        path = tmp_path / "trace.jsonl"
        to_jsonl(events, str(path))
        loaded = from_jsonl(str(path))
        assert loaded == events

    def test_traced_run_round_trips(self, tmp_path):
        result = run_app("adapt", "mpi", 4, _adapt_workload(), trace=True)
        events = result.events
        assert events, "traced run produced no events"
        path = tmp_path / "run.jsonl"
        to_jsonl(events, str(path))
        assert from_jsonl(str(path)) == events


# ---------------------------------------------------------------------------
# Comm-matrix conservation invariants at P = 4
# ---------------------------------------------------------------------------


def _mpi_ring(ctx):
    data = np.full(100, float(ctx.rank))
    got = yield from ctx.sendrecv(
        data, (ctx.rank + 1) % ctx.nprocs, (ctx.rank - 1) % ctx.nprocs,
        sendtag=0, recvtag=0,
    )
    return float(got[0])


def _shmem_neighbors(ctx):
    sym = ctx.salloc("buf", (64,))
    nxt = (ctx.rank + 1) % ctx.nprocs
    yield from ctx.put(sym, nxt, np.full(32, float(ctx.rank)), offset=0)
    yield from ctx.put(sym, nxt, np.full(16, float(ctx.rank)), offset=32)
    yield from ctx.barrier_all()
    vals = yield from ctx.get(sym, ctx.rank)
    return float(vals.sum())


def _sas_stencil(ctx):
    from repro.models.sas.parallel import block_partition

    n = 256
    x = ctx.shalloc("x", (n,), np.float64)
    lo, hi = block_partition(n, ctx.nprocs, ctx.rank)
    yield from ctx.swrite(x, np.arange(hi - lo, dtype=float), lo=lo)
    yield from ctx.barrier()
    vals = yield from ctx.sread(x)
    total = yield from ctx.reduce_all(float(vals.sum()))
    return total


class TestConservation:
    def test_mpi_every_send_is_received(self):
        result = run_program("mpi", _mpi_ring, 4, trace=True)
        sends = np.zeros((4, 4), dtype=np.int64)
        recvs = np.zeros((4, 4), dtype=np.int64)
        for ev in result.events:
            if ev.kind == "msg_send":
                sends[ev.src, ev.dst] += ev.nbytes
            elif ev.kind == "msg_recv":
                recvs[ev.src, ev.dst] += ev.nbytes
        assert sends.sum() > 0
        np.testing.assert_array_equal(sends, recvs)

    def test_shmem_every_put_completes(self):
        result = run_program("shmem", _shmem_neighbors, 4, trace=True)
        issued = np.zeros((4, 4), dtype=np.int64)
        done = np.zeros((4, 4), dtype=np.int64)
        for ev in result.events:
            if ev.kind == "put":
                issued[ev.src, ev.dst] += ev.nbytes
            elif ev.kind == "put_done":
                done[ev.src, ev.dst] += ev.nbytes
        assert issued.sum() == 4 * (32 + 16) * 8
        np.testing.assert_array_equal(issued, done)

    def test_shmem_matrix_matches_put_stats(self):
        result = run_program("shmem", _shmem_neighbors, 4, trace=True)
        m = comm_matrix(
            [ev for ev in result.events if ev.kind == "put"], 4, units="bytes"
        )
        put_bytes = sum(c.put_bytes for c in result.stats.per_cpu)
        assert int(m.sum()) == put_bytes

    def test_sas_coherence_counts_match_stats(self):
        result = run_program("sas", _sas_stencil, 4, trace=True)
        for attr_key, stat_key in (
            ("hit", "l2_hits"),
            ("local", "local_misses"),
            ("remote", "remote_misses"),
            ("dirty", "dirty_misses"),
        ):
            from_events = sum(
                ev.attrs.get(attr_key, 0)
                for ev in result.events
                if ev.kind == "coherence"
            )
            from_stats = sum(getattr(c, stat_key) for c in result.stats.per_cpu)
            assert from_events == from_stats, attr_key

    def test_sas_home_matrix_accounts_all_fetched_bytes(self):
        result = run_program("sas", _sas_stencil, 4, trace=True)
        from repro.machine import MachineConfig

        cfg = MachineConfig(nprocs=4)
        m = sas_home_matrix(result.events, 4, cfg.nnodes, cfg.line_bytes)
        fetched = sum(
            ev.nbytes for ev in result.events if ev.kind == "coherence"
        )
        assert int(m.sum()) == fetched > 0

    def test_comm_matrix_units_messages(self):
        result = run_program("mpi", _mpi_ring, 4, trace=True)
        m = comm_matrix(result.events, 4, units="messages")
        assert m.dtype == np.int64
        assert int(m.sum()) >= 4  # at least the ring messages

    def test_comm_matrix_rejects_bad_units(self):
        with pytest.raises(ValueError):
            comm_matrix([], 2, units="frobs")


# ---------------------------------------------------------------------------
# Perfetto export
# ---------------------------------------------------------------------------


class TestPerfettoExport:
    def test_schema(self, tmp_path):
        result = run_app("adapt", "shmem", 4, _adapt_workload(), trace=True)
        doc = to_perfetto(result.events, 4)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ns"
        entries = doc["traceEvents"]
        assert entries
        phases_seen = set()
        for e in entries:
            assert e["ph"] in ("X", "i", "M")
            phases_seen.add(e["ph"])
            assert isinstance(e["pid"], int)
            if e["ph"] == "X":
                assert e["dur"] >= 0 and e["ts"] >= 0
                assert isinstance(e["tid"], int)
            elif e["ph"] == "i":
                assert e["s"] == "t"
            else:  # metadata
                assert e["name"] in ("process_name", "thread_name")
        assert "X" in phases_seen and "M" in phases_seen
        # must serialize as plain JSON
        blob = json.dumps(doc)
        assert json.loads(blob)["displayTimeUnit"] == "ns"

    def test_rank_lanes_and_interconnect_pid(self):
        result = run_app("adapt", "mpi", 4, _adapt_workload(), trace=True)
        doc = to_perfetto(result.events, 4)
        data = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        rank_lanes = {e["tid"] for e in data if e["pid"] == 0}
        assert rank_lanes <= set(range(4)) and len(rank_lanes) == 4
        assert any(e["pid"] == 1 for e in data), "no interconnect events"


# ---------------------------------------------------------------------------
# Analysis passes on real traces
# ---------------------------------------------------------------------------


class TestAnalysis:
    def test_phase_breakdown_covers_adapt_phases(self):
        result = run_app("adapt", "sas", 4, _adapt_workload(), trace=True)
        breakdown = phase_breakdown(result.events)
        assert {"solve", "adapt"} <= set(breakdown)
        for row in breakdown.values():
            assert row["events"] >= 1

    def test_size_histogram_buckets_are_pow2(self):
        result = run_app("adapt", "mpi", 4, _adapt_workload(), trace=True)
        hist = size_histogram(result.events)
        assert "msg_send" in hist
        for buckets in hist.values():
            for b in buckets:
                assert b == 0 or (b & (b - 1)) == 0

    def test_summarize_and_format(self):
        result = run_app("adapt", "mpi", 2, _adapt_workload(), trace=True)
        summary = summarize(result.events)
        assert summary["msg_send"]["count"] > 0
        text = format_matrix(comm_matrix(result.events, 2))
        assert "rank\\rank" in text


# ---------------------------------------------------------------------------
# Sync checker
# ---------------------------------------------------------------------------


def _shmem_racy(ctx):
    """Rank 0 puts into rank 1's copy, then reads it back with no fence."""
    sym = ctx.salloc("flag", (8,))
    yield from ctx.barrier_all()
    if ctx.rank == 0:
        yield from ctx.put(sym, 1, np.ones(4), offset=0)
        vals = yield from ctx.get(sym, 1, offset=0, count=4)  # racy read-back
        return float(vals.sum())
    yield from ctx.compute(100.0)
    return 0.0


def _shmem_fenced(ctx):
    """Same traffic, but the writer fences before the read."""
    sym = ctx.salloc("flag", (8,))
    yield from ctx.barrier_all()
    if ctx.rank == 0:
        yield from ctx.put(sym, 1, np.ones(4), offset=0)
        yield from ctx.quiet()
        vals = yield from ctx.get(sym, 1, offset=0, count=4)
        return float(vals.sum())
    yield from ctx.compute(100.0)
    return 0.0


def _sas_racy(ctx):
    """Rank 0 writes x in phase 'produce'; rank 1 reads it in phase
    'consume' with no intervening barrier."""
    x = ctx.shalloc("x", (64,), np.float64)
    ctx.phase_begin("produce")
    yield from ctx.compute(100.0)
    if ctx.rank == 0:
        yield from ctx.swrite(x, np.ones(64), lo=0)
    else:
        yield from ctx.compute(50_000.0)
    yield from ctx.compute(100.0)
    ctx.phase_end()
    ctx.phase_begin("consume")
    if ctx.rank == 1:
        vals = yield from ctx.sread(x)  # no barrier since the write
        yield from ctx.compute(10.0)
        result = float(vals.sum())
    else:
        yield from ctx.compute(10.0)
        result = 0.0
    ctx.phase_end()
    return result


def _sas_synced(ctx):
    """Same access pattern with a barrier edge between the phases."""
    x = ctx.shalloc("x", (64,), np.float64)
    ctx.phase_begin("produce")
    yield from ctx.compute(100.0)
    if ctx.rank == 0:
        yield from ctx.swrite(x, np.ones(64), lo=0)
    else:
        yield from ctx.compute(50_000.0)
    yield from ctx.compute(100.0)
    ctx.phase_end()
    yield from ctx.barrier()
    ctx.phase_begin("consume")
    if ctx.rank == 1:
        vals = yield from ctx.sread(x)
        yield from ctx.compute(10.0)
        result = float(vals.sum())
    else:
        yield from ctx.compute(10.0)
        result = 0.0
    ctx.phase_end()
    return result


class TestSyncChecker:
    def test_unfenced_shmem_put_is_flagged(self):
        result = run_program("shmem", _shmem_racy, 2, trace=True)
        violations = check_sync(result.events, 2)
        assert violations, "seeded SHMEM race was not flagged"
        assert all(v.rule == "shmem_unfenced_put" for v in violations)
        assert violations[0].writer == 0
        assert "no fence" in str(violations[0])

    def test_fenced_shmem_put_is_clean(self):
        result = run_program("shmem", _shmem_fenced, 2, trace=True)
        assert check_sync(result.events, 2) == []

    def test_sas_cross_phase_race_is_flagged(self):
        result = run_program("sas", _sas_racy, 2, trace=True)
        violations = check_sync(result.events, 2)
        assert violations, "seeded SAS cross-phase race was not flagged"
        assert all(v.rule == "sas_unsynced_access" for v in violations)
        assert violations[0].writer == 0 and violations[0].reader == 1

    def test_sas_barrier_edge_is_clean(self):
        result = run_program("sas", _sas_synced, 2, trace=True)
        assert check_sync(result.events, 2) == []

    @pytest.mark.parametrize("model", ["mpi", "shmem", "sas"])
    def test_shipped_adapt_is_clean(self, model):
        result = run_app("adapt", model, 4, _adapt_workload(), trace=True)
        violations = check_sync(result.events, 4)
        assert violations == [], format_violations(violations)

    @pytest.mark.parametrize("model", ["mpi", "shmem", "sas"])
    def test_shipped_nbody_is_clean(self, model):
        from repro.apps.nbody import NBodyConfig

        result = run_app("nbody", model, 4, NBodyConfig(n=64, steps=2), trace=True)
        violations = check_sync(result.events, 4)
        assert violations == [], format_violations(violations)

    def test_format_violations_ok_string(self):
        assert "OK" in format_violations([])


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCli:
    def test_run_trace_and_check_sync(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "t.json"
        rc = main(["run", "--app", "adapt", "--model", "mpi", "-p", "2",
                   "-s", "small", "--trace", str(out), "--check-sync"])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "trace" in captured and "OK" in captured
        doc = json.loads(out.read_text())
        assert doc["displayTimeUnit"] == "ns"

    def test_comm_matrix_command(self, capsys):
        from repro.__main__ import main

        rc = main(["comm-matrix", "--app", "adapt", "-p", "4", "-s", "small"])
        assert rc == 0
        captured = capsys.readouterr().out
        for model in ("mpi", "shmem", "sas"):
            assert f"under {model}" in captured
        assert "rank\\rank" in captured and "rank\\home" in captured

    def test_trace_command_jsonl(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "t.jsonl"
        rc = main(["trace", "adapt", "sas", "-p", "2", "-s", "small",
                   "-o", str(out), "--phases"])
        assert rc == 0
        events = from_jsonl(str(out))
        assert events and all(isinstance(ev, Event) for ev in events)

    def test_run_positional_still_works(self, capsys):
        from repro.__main__ import main

        rc = main(["run", "jacobi", "shmem", "-n", "2", "-s", "small"])
        assert rc == 0
        assert "jacobi under shmem" in capsys.readouterr().out
