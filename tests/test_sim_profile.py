"""Unit tests for the host-time profiler and its instrumentation hooks."""

import pytest

from repro.sim import Delay, Engine
from repro.sim.profile import PROFILER, Profiler, profile_generator, profiled


@pytest.fixture(autouse=True)
def _clean_global_profiler():
    """Tests share the process-global PROFILER; leave it as found."""
    PROFILER.reset().disable()
    yield
    PROFILER.reset().disable()


class TestProfiler:
    def test_disabled_section_records_nothing(self):
        p = Profiler()
        with p.section("x"):
            pass
        assert p.seconds("x") == 0.0
        assert p.calls("x") == 0

    def test_enabled_section_records_time_and_calls(self):
        p = Profiler().enable()
        for _ in range(3):
            with p.section("x"):
                sum(range(1000))
        assert p.seconds("x") > 0.0
        assert p.calls("x") == 3

    def test_nested_same_bucket_counts_once(self):
        p = Profiler().enable()
        with p.section("mesh"):
            with p.section("mesh"):  # driver + primitive: no double-count
                pass
        assert p.calls("mesh") == 1

    def test_nested_different_buckets_both_record(self):
        p = Profiler().enable()
        with p.section("outer"):
            with p.section("inner"):
                pass
        assert p.calls("outer") == 1
        assert p.calls("inner") == 1

    def test_add_and_summary_sorted_by_cost(self):
        p = Profiler().enable()
        p.add("cheap", 0.1)
        p.add("dear", 2.0)
        p.add("cheap", 0.2, calls=4)
        summary = p.summary()
        assert list(summary) == ["dear", "cheap"]
        assert summary["cheap"]["seconds"] == pytest.approx(0.3)
        assert summary["cheap"]["calls"] == 5

    def test_reset_clears_everything(self):
        p = Profiler().enable()
        p.add("x", 1.0)
        p.reset()
        assert p.summary() == {}

    def test_report_contains_sections(self):
        p = Profiler().enable()
        p.add("cache", 0.5)
        text = p.report()
        assert "cache" in text and "total" in text

    def test_section_exception_still_books_time(self):
        p = Profiler().enable()
        with pytest.raises(RuntimeError):
            with p.section("x"):
                raise RuntimeError("boom")
        assert p.calls("x") == 1


class TestProfiledDecorator:
    def test_bills_calls_when_enabled_only(self):
        @profiled("work")
        def f(a, b):
            return a + b

        assert f(1, 2) == 3
        assert PROFILER.calls("work") == 0
        PROFILER.enable()
        assert f(3, 4) == 7
        assert PROFILER.calls("work") == 1


class TestProfileGenerator:
    def test_transparent_passthrough(self):
        """Wrapping must not change yielded requests, sent values or result."""

        def worker():
            got = yield Delay(5)
            assert got is None
            yield Delay(7)
            return "done"

        PROFILER.enable()
        eng = Engine()
        proc = eng.spawn(profile_generator("net", worker()))
        eng.run()
        assert proc.result == "done"
        assert eng.now == 12
        assert PROFILER.calls("net") == 3  # two resumptions + StopIteration

    def test_bills_only_own_resumptions(self):
        """Host time while *suspended* (other processes running) is not billed."""

        def spinner():  # burns host time in another process
            for _ in range(3):
                sum(range(20000))
                yield Delay(1)

        def idler():
            yield Delay(10)  # suspended the whole time spinner runs
            return None

        PROFILER.enable()
        eng = Engine()
        eng.spawn(spinner())
        eng.spawn(profile_generator("idle", idler()))
        eng.run()
        spin_host = sum(
            s for name, s in PROFILER._seconds.items() if name == "idle"
        )
        # the idler did ~nothing: its bucket must be tiny even though the
        # spinner burned real host time while the idler sat suspended
        assert spin_host < 0.05

    def test_network_transfer_wraps_only_when_enabled(self):
        from repro.machine import Machine, MachineConfig

        m = Machine(MachineConfig(nprocs=4))
        gen_plain = m.network.transfer(0, 1, 1024)
        PROFILER.enable()
        gen_wrapped = m.network.transfer(0, 1, 1024)
        assert gen_plain.__class__.__name__ == "generator"
        assert gen_wrapped is not gen_plain


class TestRunnerIntegration:
    def test_sas_run_populates_subsystem_buckets(self):
        import numpy as np

        from repro.models.registry import run_program

        def program(ctx):
            x = ctx.shalloc("x", (4096,), np.float64)
            yield from ctx.stouch(x, write=True)
            yield from ctx.barrier()
            yield from ctx.stouch(x, write=False)

        PROFILER.enable()
        run_program("sas", program, 2)
        assert PROFILER.seconds("directory") > 0.0
        assert PROFILER.calls("cache") > 0
