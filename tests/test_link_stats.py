"""Tests for the per-link contention statistics (``derived["link_stats"]``).

Contracts:

* **Zero cost when off** — the default run allocates nothing and leaves
  ``MachineStats.links == []``; simulated time is bit-identical with the
  counters on or off (observation must not perturb the experiment).
* **Conservation** — every inter-node transfer crosses exactly one
  node-egress link and one node-ingress link, so summing bytes over
  either class reproduces ``stats.network_bytes`` exactly, per model and
  per topology.
* **Attribution** — a deliberately contended pattern (many ranks sending
  through one destination) shows nonzero ``claim_waits``/``queued_ns``
  on the contended links and zero on untouched ones.
"""

import pytest

from repro.apps.adapt import AdaptConfig
from repro.harness import run_app
from repro.machine import Machine, MachineConfig
from repro.obs import format_link_contention, link_contention_rows

SMALL = AdaptConfig(mesh_n=8, phases=3, solver_iters=6)
LINK_ON = {"link_stats": "on"}

#: node-egress / node-ingress link kinds per topology
EGRESS = ("hub-out", "up")
INGRESS = ("hub-in", "down")


# ------------------------------------------------------------ off by default


def test_links_empty_and_unallocated_by_default():
    m = Machine(MachineConfig(nprocs=8))
    assert m.network.link_bytes is None
    result = run_app("adapt", "mpi", 8, SMALL)
    assert result.stats.links == []


def test_link_stats_do_not_change_simulated_time():
    for model in ("mpi", "shmem", "sas"):
        off = run_app("adapt", model, 8, SMALL)
        on = run_app("adapt", model, 8, SMALL, derived=LINK_ON)
        assert on.elapsed_ns == off.elapsed_ns, model
        assert on.rank_results == off.rank_results, model
        assert off.stats.links == [] and on.stats.links != []


# ------------------------------------------------------------- conservation


@pytest.mark.parametrize("model", ("mpi", "shmem", "sas", "hybrid"))
def test_link_bytes_conserve_network_totals(model):
    result = run_app("adapt", model, 8, SMALL, derived=LINK_ON)
    links = result.stats.links
    egress = sum(ls.bytes for ls in links if ls.kind in EGRESS)
    ingress = sum(ls.bytes for ls in links if ls.kind in INGRESS)
    assert egress == result.stats.network_bytes
    assert ingress == result.stats.network_bytes


@pytest.mark.parametrize("profile", ("fat-tree-cluster", "dragonfly"))
def test_link_bytes_conserve_on_other_topologies(profile):
    result = run_app("adapt", "mpi", 8, SMALL, derived=LINK_ON,
                     machine_profile=profile)
    links = result.stats.links
    egress = sum(ls.bytes for ls in links if ls.kind in EGRESS)
    ingress = sum(ls.bytes for ls in links if ls.kind in INGRESS)
    assert egress == result.stats.network_bytes
    assert ingress == result.stats.network_bytes


def test_link_identity_is_stable_and_unique():
    result = run_app("adapt", "mpi", 8, SMALL, derived=LINK_ON)
    idents = [ls.ident for ls in result.stats.links]
    assert len(idents) == len(set(idents))
    again = run_app("adapt", "mpi", 8, SMALL, derived=LINK_ON)
    assert idents == [ls.ident for ls in again.stats.links]
    assert [ls.bytes for ls in result.stats.links] == \
        [ls.bytes for ls in again.stats.links]


# -------------------------------------------------------------- attribution


def _flood_one_destination(nprocs=8, nbytes=1 << 16, rounds=4):
    """Every rank simultaneously ships a large block to node 0."""
    m = Machine(MachineConfig(
        nprocs=nprocs, derived={"link_stats": "on"},
    ))

    def sender(src_node):
        for _ in range(rounds):
            yield from m.network.transfer(src_node, 0, nbytes)

    for r in range(nprocs):
        node = m.config.node_of_cpu(r)
        if node != 0:
            m.engine.spawn(sender(node))
    m.engine.run()
    return m


def test_contended_links_show_queueing():
    m = _flood_one_destination()
    links = m.network.link_stats()
    by_ident = {ls.ident: ls for ls in links}
    # node 0's ingress is the shared bottleneck: everyone funnels into it
    hot = by_ident[("hub-in", 0, 0)]
    assert hot.claim_waits > 0
    assert hot.queued_ns > 0.0
    assert hot.saturation > 0.0
    # an egress link of a node that only ever sends once per round never
    # competes with anyone for its own private hub-out
    for ls in links:
        if ls.kind == "hub-out" and ls.src != 0 and ls.acquires:
            assert ls.bytes > 0
    # links that carried nothing report all-zero counters
    for ls in links:
        if ls.acquires == 0:
            assert ls.bytes == 0 and ls.claim_waits == 0
            assert ls.queued_ns == 0.0 and ls.busy_ns == 0.0


def test_uncontended_single_transfer_has_no_waits():
    m = Machine(MachineConfig(nprocs=4, derived={"link_stats": "on"}))

    def prog():
        yield from m.network.transfer(0, 1, 4096)

    m.engine.spawn(prog())
    m.engine.run()
    links = m.network.link_stats()
    assert sum(ls.bytes for ls in links if ls.kind == "hub-out") == 4096
    assert all(ls.claim_waits == 0 for ls in links)
    assert all(ls.queued_ns == 0.0 for ls in links)


def test_link_stats_raises_when_disabled():
    m = Machine(MachineConfig(nprocs=4))
    with pytest.raises(RuntimeError, match="link_stats"):
        m.network.link_stats()


# ------------------------------------------------------------ obs analyses


def test_link_contention_rows_sort_and_truncate():
    result = run_app("adapt", "shmem", 8, SMALL, derived=LINK_ON)
    rows = link_contention_rows(result.stats.links)
    queued = [r["queued_ns"] for r in rows]
    assert queued == sorted(queued, reverse=True)
    assert all(r["acquires"] > 0 for r in rows)  # busy_only default
    top3 = link_contention_rows(result.stats.links, top=3)
    assert len(top3) == 3 and top3 == rows[:3]


def test_link_contention_rows_reject_empty_snapshot():
    with pytest.raises(ValueError, match="link_stats"):
        link_contention_rows([])


def test_format_link_contention_renders_table():
    result = run_app("adapt", "mpi", 8, SMALL, derived=LINK_ON)
    text = format_link_contention(result.stats.links, top=5)
    lines = text.splitlines()
    assert "queued_ms" in lines[0]
    assert len(lines) <= 6
    assert any("hub-out" in ln or "hub-in" in ln or "cube" in ln
               for ln in lines[1:])
