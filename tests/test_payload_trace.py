"""Tests for wire-size estimation and the trace buffer."""

import numpy as np
import pytest

from repro.models.payload import nbytes_of
from repro.sim.trace import TraceRecord, Tracer


class TestNbytesOf:
    def test_none_is_free(self):
        assert nbytes_of(None) == 0

    def test_numpy_exact(self):
        assert nbytes_of(np.zeros(10, dtype=np.float64)) == 80
        assert nbytes_of(np.zeros((4, 4), dtype=np.int32)) == 64

    def test_bytes_and_str(self):
        assert nbytes_of(b"abc") == 3
        assert nbytes_of("abc") == 3
        assert nbytes_of("ü") == 2  # utf-8

    def test_scalars(self):
        assert nbytes_of(1) == 8
        assert nbytes_of(1.5) == 8
        assert nbytes_of(True) == 8
        assert nbytes_of(np.float64(2.0)) == 8

    def test_containers_sum_plus_overhead(self):
        assert nbytes_of([1, 2]) == 16 + 16
        assert nbytes_of((1,)) == 16 + 8
        assert nbytes_of({"k": 1}) == 16 + 1 + 8

    def test_nested(self):
        payload = {"a": np.zeros(4), "b": [1, 2]}
        assert nbytes_of(payload) == 16 + 1 + 32 + 1 + (16 + 16)

    def test_object_with_dict(self):
        class Thing:
            def __init__(self):
                self.x = np.zeros(2)
                self.y = 3

        assert nbytes_of(Thing()) == 16 + 16 + 8


class TestTracer:
    def test_disabled_by_default(self):
        t = Tracer()
        t.emit(1.0, "a", "send")
        assert t.records == []

    def test_enabled_records(self):
        t = Tracer(enabled=True)
        t.emit(1.0, "rank0", "send", {"bytes": 8})
        t.emit(2.0, "rank1", "recv")
        assert len(t.records) == 2
        assert t.records[0] == TraceRecord(1.0, "rank0", "send", {"bytes": 8})

    def test_filter(self):
        t = Tracer(enabled=True)
        t.emit(1.0, "a", "send")
        t.emit(2.0, "b", "send")
        t.emit(3.0, "a", "recv")
        assert len(t.filter(kind="send")) == 2
        assert len(t.filter(actor="a")) == 2
        assert len(t.filter(kind="send", actor="a")) == 1

    def test_limit(self):
        t = Tracer(enabled=True, limit=2)
        for i in range(5):
            t.emit(float(i), "a", "x")
        assert len(t.records) == 2

    def test_limit_keeps_newest_and_counts_dropped(self):
        t = Tracer(enabled=True, limit=2)
        for i in range(5):
            t.emit(float(i), "a", "x")
        # ring buffer: the two *newest* records survive, the rest are counted
        assert [r.time_ns for r in t.records] == [3.0, 4.0]
        assert t.dropped == 3

    def test_summary_reports_dropped(self):
        t = Tracer(enabled=True, limit=1)
        t.emit(1.0, "a", "send")
        t.emit(2.0, "a", "send")
        t.emit(3.0, "a", "recv")
        s = t.summary()
        assert s["dropped"] == 2
        assert s["recv"] == 1

    def test_clear_resets_dropped(self):
        t = Tracer(enabled=True, limit=1)
        t.emit(1.0, "a", "x")
        t.emit(2.0, "a", "x")
        assert t.dropped == 1
        t.clear()
        assert t.dropped == 0 and t.records == []

    def test_clear(self):
        t = Tracer(enabled=True)
        t.emit(1.0, "a", "x")
        t.clear()
        assert t.records == []

    def test_context_trace_integration(self):
        """ctx.trace feeds the machine tracer when enabled."""
        from repro.machine import Machine, MachineConfig
        from repro.models.registry import make_contexts

        machine = Machine(MachineConfig(nprocs=2), trace=True)
        contexts = make_contexts(machine, "mpi")

        def program(ctx):
            ctx.trace("phase", "start")
            yield from ctx.compute(10.0)
            ctx.trace("phase", "end")

        for rank, ctx in enumerate(contexts):
            machine.spawn_rank(rank, program(ctx))
        machine.run()
        assert len(machine.tracer.filter(kind="phase")) == 4
