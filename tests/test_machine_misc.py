"""Coverage for the remaining machine pieces: stats, nodes, machine glue,
and the program-launch registry."""

import numpy as np
import pytest

from repro.machine import Machine, MachineConfig
from repro.machine.node import build_nodes
from repro.machine.stats import CpuStats, MachineStats
from repro.models.registry import MODEL_NAMES, make_contexts, run_program
from repro.sim.engine import Delay


class TestStats:
    def test_charge_categories(self):
        c = CpuStats(cpu=0)
        c.charge("compute", 10)
        c.charge("comm", 20)
        c.charge("sync", 30)
        c.charge("stall", 40)
        assert c.busy_ns == 100
        assert c.breakdown() == {"compute": 10, "comm": 20, "sync": 30, "stall": 40}

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            CpuStats().charge("waiting", 1)

    def test_misses_property(self):
        c = CpuStats(local_misses=1, remote_misses=2, dirty_misses=3)
        assert c.misses == 6

    def test_machine_stats_aggregation(self):
        s = MachineStats.for_nprocs(3)
        s.per_cpu[0].msgs_sent = 5
        s.per_cpu[2].msgs_sent = 7
        assert s.total("msgs_sent") == 12
        assert s.max_over_cpus("msgs_sent") == 7
        assert s.breakdown_totals()["compute"] == 0.0
        assert "msgs_sent" in s.summary()


class TestNodes:
    def test_node_cards(self):
        nodes = build_nodes(MachineConfig(nprocs=6))
        assert len(nodes) == 3
        assert nodes[0].cpus == (0, 1)
        assert nodes[2].cpus == (4, 5)
        assert nodes[2].router == 1

    def test_partial_last_node(self):
        nodes = build_nodes(MachineConfig(nprocs=5))
        assert nodes[2].cpus == (4,)


class TestMachineGlue:
    def test_spawn_rank_bounds(self):
        m = Machine(MachineConfig(nprocs=2))

        def prog():
            yield Delay(1)

        with pytest.raises(ValueError):
            m.spawn_rank(5, prog())

    def test_double_spawn_rejected(self):
        m = Machine(MachineConfig(nprocs=2))

        def prog():
            yield Delay(1)

        m.spawn_rank(0, prog())
        with pytest.raises(RuntimeError):
            m.spawn_rank(0, prog())

    def test_elapsed_is_max_rank_finish(self):
        m = Machine(MachineConfig(nprocs=2))

        def prog(t):
            yield Delay(t)
            return t

        m.spawn_rank(0, prog(100))
        m.spawn_rank(1, prog(250))
        m.run()
        assert m.elapsed_ns() == 250
        assert m.rank_finish_ns(0) == 100
        assert m.results() == [100, 250]

    def test_rank_finish_before_run_raises(self):
        m = Machine(MachineConfig(nprocs=1))
        with pytest.raises(RuntimeError):
            m.rank_finish_ns(0)


class TestRegistry:
    def test_model_names(self):
        assert set(MODEL_NAMES) == {"mpi", "shmem", "sas", "hybrid"}

    def test_unknown_model(self):
        m = Machine(MachineConfig(nprocs=2))
        with pytest.raises(ValueError, match="unknown model"):
            make_contexts(m, "pvm")

    def test_run_program_grows_config(self):
        def prog(ctx):
            yield from ctx.compute(1.0)
            return ctx.nprocs

        res = run_program("mpi", prog, 6, config=MachineConfig(nprocs=2))
        assert res.rank_results[0] == 6

    def test_run_program_machine_too_small(self):
        m = Machine(MachineConfig(nprocs=2))

        def prog(ctx):
            yield from ctx.compute(1.0)

        with pytest.raises(ValueError, match="machine has"):
            run_program("mpi", prog, 4, machine=m)

    def test_program_result_fields(self):
        def prog(ctx):
            ctx.phase_begin("work")
            yield from ctx.compute(500.0)
            ctx.phase_end()
            return ctx.rank

        res = run_program("sas", prog, 2)
        assert res.model == "sas"
        assert res.elapsed_ms == pytest.approx(res.elapsed_ns / 1e6)
        assert res.phase_ns["work"] >= 500.0
        assert res.rank_results == [0, 1]
