"""Integration tests for the CC-SAS runtime."""

import numpy as np
import pytest

from repro.models.registry import run_program
from repro.models.sas.parallel import WorkQueue, block_partition

NPROC_SET = (1, 2, 3, 4, 5, 8, 13, 16)


def run_sas(program, nprocs, *args, **kwargs):
    return run_program("sas", program, nprocs, *args, **kwargs)


class TestBlockPartition:
    def test_covers_everything_without_overlap(self):
        for total in (0, 1, 7, 100):
            for nprocs in (1, 3, 8):
                spans = [block_partition(total, nprocs, r) for r in range(nprocs)]
                flat = [i for lo, hi in spans for i in range(lo, hi)]
                assert flat == list(range(total))

    def test_balanced_within_one(self):
        sizes = [hi - lo for lo, hi in (block_partition(100, 7, r) for r in range(7))]
        assert max(sizes) - min(sizes) <= 1

    def test_bad_args(self):
        with pytest.raises(ValueError):
            block_partition(10, 0, 0)
        with pytest.raises(ValueError):
            block_partition(10, 2, 5)


class TestSharedArrays:
    def test_shared_data_is_truly_shared(self):
        def program(ctx):
            x = ctx.shalloc("x", (64,), np.float64)
            lo, hi = block_partition(64, ctx.nprocs, ctx.rank)
            yield from ctx.swrite(x, np.full(hi - lo, float(ctx.rank)), lo=lo)
            yield from ctx.barrier()
            vals = yield from ctx.sread(x)
            return float(vals.sum())

        res = run_sas(program, 4)
        expected = sum(rank * 16 for rank in range(4))
        assert res.rank_results == [float(expected)] * 4

    def test_conflicting_realloc_rejected(self):
        def program(ctx):
            ctx.shalloc("y", (8 + ctx.rank,), np.float64)
            yield from ctx.barrier()

        with pytest.raises(ValueError, match="conflicting"):
            run_sas(program, 2)

    def test_sread_returns_copy(self):
        def program(ctx):
            x = ctx.shalloc("x", (4,), np.float64)
            yield from ctx.swrite(x, [1.0, 2.0, 3.0, 4.0])
            got = yield from ctx.sread(x)
            got[0] = 99.0  # must not write through
            again = yield from ctx.sread(x, 0, 1)
            return float(again[0])

        res = run_sas(program, 1)
        assert res.rank_results == [1.0]

    def test_touch_bounds_checked(self):
        def program(ctx):
            x = ctx.shalloc("x", (4,), np.float64)
            yield from ctx.stouch(x, 0, 10)

        with pytest.raises(IndexError):
            run_sas(program, 1)


class TestCoherenceCosts:
    def test_repeated_local_reads_hit_cache(self):
        def program(ctx):
            x = ctx.shalloc("x", (256,), np.float64)
            yield from ctx.sread(x)
            t0 = ctx.now
            yield from ctx.sread(x)
            return ctx.now - t0

        res = run_sas(program, 1)
        stats = res.stats.per_cpu[0]
        assert stats.l2_hits > 0
        # second sweep is all hits: much cheaper than a miss per line
        assert res.rank_results[0] < 256 * 8 / 128 * 338

    def test_false_sharing_costs_invalidations(self):
        """Two CPUs writing adjacent elements of one line ping-pong it."""

        def program(ctx):
            x = ctx.shalloc("x", (2,), np.float64)  # one cache line
            for _ in range(20):
                yield from ctx.swrite(x, [float(ctx.rank)], lo=ctx.rank)
            yield from ctx.barrier()

        res = run_sas(program, 2)
        total_inval = res.stats.total("invalidations_sent")
        assert total_inval >= 19  # nearly every write invalidates the peer

    def test_placement_policy_changes_cost(self):
        """first-touch beats fixed-on-node-0 for partitioned access."""

        def program(ctx):
            x = ctx.shalloc("x", (8192,), np.float64)
            lo, hi = block_partition(8192, ctx.nprocs, ctx.rank)
            for _ in range(4):
                yield from ctx.stouch(x, lo, hi, write=True)
                # flush so every round pays memory latency again
                ctx.machine.caches[ctx.rank].flush()
            yield from ctx.barrier()

        t_ft = run_sas(program, 8, placement="first-touch").elapsed_ns
        t_fixed = run_sas(program, 8, placement="fixed:0").elapsed_ns
        assert t_fixed > t_ft * 1.2

    def test_stall_time_charged_for_remote_reads(self):
        def program(ctx):
            x = ctx.shalloc("x", (1024,), np.float64)
            lo, hi = block_partition(1024, ctx.nprocs, ctx.rank)
            yield from ctx.swrite(x, np.ones(hi - lo), lo=lo)
            yield from ctx.barrier()
            # reading the other rank's half crosses the coherence protocol
            yield from ctx.sread(x)

        res = run_sas(program, 2)
        assert res.stats.per_cpu[0].stall_ns > 0
        assert res.stats.per_cpu[0].loads == 1024
        assert res.stats.per_cpu[0].dirty_misses > 0

    def test_local_data_accesses_charge_no_extra_stall(self):
        """Hits and local misses are covered by the compute constants."""

        def program(ctx):
            x = ctx.shalloc("x", (1024,), np.float64)
            yield from ctx.sread(x)
            return ctx.stats.stall_ns

        res = run_sas(program, 1)
        assert res.rank_results[0] == 0.0


class TestSync:
    @pytest.mark.parametrize("n", NPROC_SET)
    def test_barrier_synchronises(self, n):
        def program(ctx):
            yield from ctx.compute(777.0 * ctx.rank)
            yield from ctx.barrier()
            return ctx.now

        res = run_sas(program, n)
        assert all(t >= 777.0 * (n - 1) for t in res.rank_results)

    def test_barrier_reusable_many_times(self):
        def program(ctx):
            for i in range(10):
                yield from ctx.compute(100.0 * ((ctx.rank + i) % ctx.nprocs))
                yield from ctx.barrier()
            return True

        res = run_sas(program, 5)
        assert all(res.rank_results)

    def test_lock_mutual_exclusion(self):
        def program(ctx):
            acc = ctx.shalloc("acc", (1,), np.float64)
            for _ in range(5):
                yield from ctx.lock("m")
                cur = yield from ctx.sread(acc, 0, 1)
                yield from ctx.compute(123.0)
                yield from ctx.swrite(acc, cur + 1.0)
                yield from ctx.unlock("m")
            yield from ctx.barrier()
            final = yield from ctx.sread(acc, 0, 1)
            return float(final[0])

        res = run_sas(program, 4)
        assert res.rank_results == [20.0] * 4

    def test_unlock_foreign_lock_rejected(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.lock("m")
            yield from ctx.barrier()
            if ctx.rank == 1:
                yield from ctx.unlock("m")

        with pytest.raises(RuntimeError, match="does not hold"):
            run_sas(program, 2)

    @pytest.mark.parametrize("n", NPROC_SET)
    def test_reduce_all(self, n):
        def program(ctx):
            got = yield from ctx.reduce_all(ctx.rank + 1)
            return got

        res = run_sas(program, n)
        assert res.rank_results == [n * (n + 1) // 2] * n

    def test_reduce_all_with_arrays(self):
        def program(ctx):
            got = yield from ctx.reduce_all(np.full(4, float(ctx.rank)))
            return float(got[0])

        res = run_sas(program, 4)
        assert res.rank_results == [6.0] * 4


class TestWorkQueue:
    @pytest.mark.parametrize("n", (1, 2, 4, 8))
    def test_chunks_cover_exactly(self, n):
        def program(ctx):
            wq = WorkQueue(ctx, "q", 101, chunk=7)
            got = []
            while True:
                chunk = yield from wq.next_chunk(ctx)
                if chunk is None:
                    break
                got.extend(range(*chunk))
                yield from ctx.compute(50.0)
            all_items = yield from ctx.reduce_all(got, lambda a, b: a + b)
            return sorted(all_items)

        res = run_sas(program, n)
        assert res.rank_results[0] == list(range(101))

    def test_dynamic_beats_static_under_imbalance(self):
        """Self-scheduling wins when per-item cost is wildly skewed."""

        def static_prog(ctx):
            lo, hi = block_partition(64, ctx.nprocs, ctx.rank)
            for i in range(lo, hi):
                yield from ctx.compute(10_000.0 if i < 8 else 100.0)
            yield from ctx.barrier()

        def dynamic_prog(ctx):
            wq = WorkQueue(ctx, "q", 64, chunk=1)
            while True:
                chunk = yield from wq.next_chunk(ctx)
                if chunk is None:
                    break
                for i in range(*chunk):
                    yield from ctx.compute(10_000.0 if i < 8 else 100.0)
            yield from ctx.barrier()

        t_static = run_sas(static_prog, 8).elapsed_ns
        t_dynamic = run_sas(dynamic_prog, 8).elapsed_ns
        assert t_dynamic < t_static

    def test_bad_args(self):
        def program(ctx):
            WorkQueue(ctx, "q", -1)
            yield from ctx.barrier()

        with pytest.raises(ValueError):
            run_sas(program, 1)


class TestBarrierStats:
    def test_central_barrier_accumulates_sync_on_every_rank(self):
        def program(ctx):
            yield from ctx.compute(float(ctx.rank) * 500.0)  # skewed arrivals
            yield from ctx.barrier(kind="central")
            return ctx.now

        res = run_sas(program, 4)
        # early arrivals wait for the straggler: everyone books sync time
        for rank in range(4):
            assert res.stats.per_cpu[rank].sync_ns > 0.0
        # rank 0 arrived first, so it waited longest
        syncs = [res.stats.per_cpu[r].sync_ns for r in range(4)]
        assert syncs[0] == max(syncs)

    def test_central_barrier_sense_word_misses_are_coherence_misses(self):
        """The release write invalidates every waiter's cached sense word;
        their re-reads after the barrier are coherence (dirty/remote) misses
        the directory must charge — the O(P) hot-spot the paper discusses."""

        def program(ctx):
            for _ in range(3):
                yield from ctx.barrier(kind="central")
            return None

        res = run_sas(program, 4)
        s = res.stats.summary()
        assert s["invalidations"] > 0  # counter + sense-word ping-pong
        assert s["dirty_misses"] + s["remote_misses"] > 0

    def test_central_costs_more_than_tree(self):
        def program(ctx):
            for _ in range(4):
                yield from ctx.barrier(kind=ctx.cfg.derived.get("bar_kind", "tree"))
            return ctx.now

        from repro.machine import MachineConfig

        central = run_program(
            "sas", program, 8,
            config=MachineConfig(nprocs=8, derived={"bar_kind": "central"}),
        )
        tree = run_program(
            "sas", program, 8,
            config=MachineConfig(nprocs=8, derived={"bar_kind": "tree"}),
        )
        assert central.elapsed_ns > tree.elapsed_ns

    def test_barrier_group_syncs_subgroup_only(self):
        def program(ctx):
            group = ctx.rank // 2  # pairs
            yield from ctx.compute(1000.0 * (ctx.rank % 2))
            yield from ctx.barrier_group(("pair", group), 2)
            return ctx.now

        res = run_sas(program, 4)
        # within a pair both ranks leave together; sync was booked
        assert res.rank_results[0] == res.rank_results[1]
        assert res.rank_results[2] == res.rank_results[3]
        assert res.stats.per_cpu[0].sync_ns > 0.0

    def test_barrier_group_size_one_is_free(self):
        def program(ctx):
            yield from ctx.barrier_group("solo", 1)
            return ctx.now

        res = run_sas(program, 2)
        assert res.rank_results == [0.0, 0.0]

    def test_barrier_group_rejects_bad_size(self):
        def program(ctx):
            yield from ctx.barrier_group("bad", 0)

        with pytest.raises(ValueError, match="group size"):
            run_sas(program, 2)

    def test_barrier_group_reusable_across_phases(self):
        def program(ctx):
            for _ in range(3):  # the state must reset between uses
                yield from ctx.barrier_group("all", ctx.nprocs)
            return ctx.now

        res = run_sas(program, 4)
        assert len(set(res.rank_results)) == 1
