"""Tests for the pluggable hardware profiles (``repro.machine.profiles``).

The load-bearing contracts:

* **Golden bit-identity** — ``profile="origin2000"`` and no profile at
  all produce bit-identical runs (elapsed ns, rank results, and the full
  obs event stream) for every model.  The profile layer must be a pure
  overlay: zero simulated-time cost when it overlays nothing.
* **No aliasing** — two profiles that differ in a single cost constant
  produce different cache keys, different store identities, and separate
  ``by_profile`` buckets; a custom profile never aliases a registered
  name.
* **Route sanity off-hypercube** — the fat-tree and dragonfly topologies
  keep the deadlock-freedom invariant (strictly increasing link rank
  along every route) and their ``router_hops`` agree with the routes the
  network actually takes (the directory charges latency through
  ``router_hops``).
"""

import hashlib

import pytest

from repro.apps.adapt import AdaptConfig
from repro.harness import run_app
from repro.machine import Machine, MachineConfig
from repro.machine.profiles import (
    PROFILES,
    MachineProfile,
    machine_profile_signature,
    resolve_machine_profile,
)
from repro.machine.topology import build_topology
from repro.serving import Cell, ResultStore, cache_key, run_signature

SMALL = AdaptConfig(mesh_n=8, phases=3, solver_iters=6)
MODELS = ("mpi", "shmem", "sas")
GOLDEN_PROCS = [1, 8, pytest.param(64, marks=pytest.mark.nightly)]


# ---------------------------------------------------------------- registry


def test_registry_has_the_documented_profiles():
    assert set(PROFILES) == {
        "origin2000", "numa-epyc", "fat-tree-cluster", "dragonfly",
    }
    for name, prof in PROFILES.items():
        assert prof.name == name
        assert prof.description
        # every profile must be applicable to a default config
        prof.apply(MachineConfig())


def test_origin2000_profile_is_the_empty_overlay():
    cfg = MachineConfig(nprocs=8)
    assert PROFILES["origin2000"].overrides == ()
    # the empty overlay returns the very same config object
    assert PROFILES["origin2000"].apply(cfg) is cfg


def test_profile_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown MachineConfig field"):
        MachineProfile("x", "bad", overrides=(("not_a_field", 1),))


def test_profile_rejects_experiment_state_fields():
    with pytest.raises(ValueError, match="experiment state"):
        MachineProfile("x", "bad", overrides=(("nprocs", 64),))
    with pytest.raises(ValueError, match="experiment state"):
        MachineProfile("x", "bad", overrides=(("derived", {}),))


def test_profile_rejects_duplicate_overrides():
    with pytest.raises(ValueError, match="twice"):
        MachineProfile("x", "bad", overrides=(("hub_ns", 1.0), ("hub_ns", 2.0)))


def test_resolve_passthrough_and_lookup():
    assert resolve_machine_profile(None) is None
    prof = PROFILES["dragonfly"]
    assert resolve_machine_profile(prof) is prof
    assert resolve_machine_profile("dragonfly") is prof
    with pytest.raises(TypeError):
        resolve_machine_profile(42)


def test_resolve_unknown_name_suggests_nearest():
    with pytest.raises(ValueError) as exc:
        resolve_machine_profile("dragonfyl")
    msg = str(exc.value)
    assert "did you mean 'dragonfly'?" in msg
    assert "origin2000" in msg  # the full valid list is shown
    with pytest.raises(ValueError) as exc:
        resolve_machine_profile("no-such-machine")
    assert "choose from" in str(exc.value)


def test_signature_distinguishes_custom_from_registered():
    assert machine_profile_signature(None) is None
    assert machine_profile_signature("numa-epyc") == "numa-epyc"
    assert machine_profile_signature(PROFILES["numa-epyc"]) == "numa-epyc"
    # same name, different constants: must NOT sign as the bare name
    fake = MachineProfile("numa-epyc", "tweaked",
                          overrides=(("hub_ns", 1.0),))
    assert machine_profile_signature(fake) != "numa-epyc"


# ---------------------------------------------------- golden bit-identity


def _fingerprint(result) -> str:
    events = result.events or []
    blob = repr([
        (ev.kind, ev.src, ev.dst, ev.t, ev.dur, ev.nbytes) for ev in events
    ]).encode()
    return hashlib.sha256(blob).hexdigest()


@pytest.mark.parametrize("nprocs", GOLDEN_PROCS, ids=lambda p: f"P{p}")
@pytest.mark.parametrize("model", MODELS)
def test_origin2000_profile_is_bit_identical_to_default(model, nprocs):
    base = run_app("adapt", model, nprocs, SMALL, trace=True)
    prof = run_app("adapt", model, nprocs, SMALL, trace=True,
                   machine_profile="origin2000")
    assert prof.elapsed_ns == base.elapsed_ns
    assert prof.rank_results == base.rank_results
    assert _fingerprint(prof) == _fingerprint(base)


def test_other_profiles_change_simulated_time():
    base = run_app("adapt", "mpi", 8, SMALL)
    for name in ("numa-epyc", "fat-tree-cluster", "dragonfly"):
        other = run_app("adapt", "mpi", 8, SMALL, machine_profile=name)
        assert other.elapsed_ns != base.elapsed_ns, name


def test_profiled_runs_are_deterministic():
    a = run_app("adapt", "shmem", 8, SMALL, machine_profile="dragonfly")
    b = run_app("adapt", "shmem", 8, SMALL, machine_profile="dragonfly")
    assert a.elapsed_ns == b.elapsed_ns
    assert a.rank_results == b.rank_results


# ------------------------------------------------------------- aliasing


def test_cost_constant_difference_means_distinct_cache_keys():
    slow = MachineProfile("custom-a", "a", overrides=(("hub_ns", 60.0),))
    fast = MachineProfile("custom-b", "b", overrides=(("hub_ns", 30.0),))
    sigs = [
        run_signature("adapt", "mpi", 8, SMALL, "first-touch", None, None,
                      machine_profile=mp)
        for mp in (None, "origin2000", slow, fast)
    ]
    keys = [cache_key(s) for s in sigs]
    assert len(set(keys)) == 4  # default, named, and both customs all distinct


def test_store_entries_do_not_alias_across_profiles(tmp_path):
    store = ResultStore(tmp_path / "cache")
    r_default = run_app("adapt", "mpi", 8, SMALL, store=store)
    r_dragon = run_app("adapt", "mpi", 8, SMALL, store=store,
                       machine_profile="dragonfly")
    assert r_default.elapsed_ns != r_dragon.elapsed_ns
    # warm pass returns each profile's own stored time
    again_default = run_app("adapt", "mpi", 8, SMALL, store=store)
    again_dragon = run_app("adapt", "mpi", 8, SMALL, store=store,
                           machine_profile="dragonfly")
    assert again_default.elapsed_ns == r_default.elapsed_ns
    assert again_dragon.elapsed_ns == r_dragon.elapsed_ns
    st = store.stats()
    assert st["entries"] == 2
    assert st["by_profile"] == {"default": 1, "dragonfly": 1}


def test_custom_profile_buckets_as_custom_in_stats(tmp_path):
    store = ResultStore(tmp_path / "cache")
    tweak = MachineProfile("tweak", "t", overrides=(("hub_ns", 10.0),))
    run_app("adapt", "mpi", 2, SMALL, store=store, machine_profile=tweak)
    assert store.stats()["by_profile"] == {"custom": 1}


def test_cell_signature_and_identity_carry_the_profile():
    plain = Cell("adapt", "mpi", 8, SMALL, "first-touch")
    prof = Cell("adapt", "mpi", 8, SMALL, "first-touch",
                machine_profile="fat-tree-cluster")
    assert plain.signature() != prof.signature()
    assert plain.identity().endswith("/default")
    assert prof.identity().endswith("/fat-tree-cluster")
    assert "@fat-tree-cluster" in prof.label()


# --------------------------------------------- non-hypercube topologies


@pytest.mark.parametrize("name", ["fat-tree-cluster", "dragonfly"])
@pytest.mark.parametrize("nprocs", [2, 8, 32])
def test_routes_have_strictly_increasing_rank(name, nprocs):
    """The deadlock-freedom invariant holds off the hypercube too."""
    cfg = PROFILES[name].apply(MachineConfig(nprocs=nprocs))
    topo = build_topology(cfg)
    for a in range(topo.nnodes):
        for b in range(topo.nnodes):
            info = topo.route_info(a, b)
            ranks = [topo.links[i].rank for i in info.links]
            assert ranks == sorted(ranks)
            assert len(set(ranks)) == len(ranks), (a, b, info.links)


@pytest.mark.parametrize("name", ["fat-tree-cluster", "dragonfly"])
def test_router_hops_matches_the_actual_route(name):
    """The directory's latency charge must agree with the network route."""
    cfg = PROFILES[name].apply(MachineConfig(nprocs=32))
    topo = build_topology(cfg)
    for a in range(topo.nnodes):
        for b in range(topo.nnodes):
            assert topo.router_hops(a, b) == topo.route_info(a, b).hops


def test_fattree_routes_are_uniform_two_hop():
    cfg = PROFILES["fat-tree-cluster"].apply(MachineConfig(nprocs=32))
    topo = build_topology(cfg)
    for a in range(topo.nnodes):
        for b in range(topo.nnodes):
            if a == b:
                assert topo.router_hops(a, b) == 0
            else:
                assert topo.router_hops(a, b) == 2
                kinds = [topo.links[i].kind for i in topo.route_info(a, b).links]
                assert kinds == ["up", "down"]


def test_dragonfly_remote_routes_cross_one_global_link():
    cfg = PROFILES["dragonfly"].apply(MachineConfig(nprocs=64))
    topo = build_topology(cfg)
    group = cfg.dragonfly_group
    for a in range(topo.nnodes):
        for b in range(topo.nnodes):
            ra, rb = cfg.router_of_node(a), cfg.router_of_node(b)
            kinds = [topo.links[i].kind for i in topo.route_info(a, b).links]
            if ra // group == rb // group:
                assert "global" not in kinds
                assert topo.route_info(a, b).deep_hops == 0
            else:
                assert kinds.count("global") == 1
                assert topo.route_info(a, b).deep_hops == 1


def test_machine_builds_and_runs_under_every_profile():
    for name in PROFILES:
        m = Machine(MachineConfig(nprocs=8), profile=name)
        assert m.profile.name == name
        if name != "origin2000":
            assert name in m.describe()


# ------------------------------------------------------------------ CLI


def test_cli_rejects_unknown_profile_with_suggestion(capsys):
    from repro.__main__ import main

    with pytest.raises(SystemExit) as exc:
        main(["run", "adapt", "mpi", "-n", "2", "--machine-profile", "origin200"])
    msg = str(exc.value)
    assert "did you mean 'origin2000'?" in msg
    assert "choose from" in msg


def test_cli_profiles_list_and_describe(capsys):
    from repro.__main__ import main

    assert main(["profiles", "list"]) == 0
    out = capsys.readouterr().out
    for name in PROFILES:
        assert name in out
    assert main(["profiles", "describe", "fat-tree-cluster"]) == 0
    out = capsys.readouterr().out
    assert "topology" in out and "fattree" in out
