"""Tests for the experiment harness (runner, tables, figures, LoC, CLI)."""

from pathlib import Path

import pytest

from repro.apps.jacobi import JacobiConfig
from repro.harness import (
    APPS,
    ascii_chart,
    count_loc,
    effort_table,
    format_table,
    run_app,
    sweep,
)
from repro.harness.breakdown import aggregate_breakdown, breakdown_rows, comm_stats_rows
from repro.harness.tables import format_dict_table

SMALL = JacobiConfig(nx=32, ny=32, iters=4)


class TestRunApp:
    def test_all_apps_registered(self):
        assert set(APPS) == {"adapt", "adapt3d", "nbody", "jacobi", "scenario"}

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError, match="unknown app"):
            run_app("weather", "mpi", 2)

    def test_run_returns_program_result(self):
        res = run_app("jacobi", "mpi", 2, SMALL)
        assert res.model == "mpi"
        assert res.nprocs == 2
        assert res.elapsed_ms > 0
        assert len(res.rank_results) >= 2

    def test_placement_is_forwarded(self):
        # a grid spanning several pages, so placement actually differs
        big = JacobiConfig(nx=128, ny=128, iters=4)
        a = run_app("jacobi", "sas", 4, big, placement="first-touch")
        b = run_app("jacobi", "sas", 4, big, placement="fixed:0")
        assert a.elapsed_ms != b.elapsed_ms

    def test_adapt_script_is_cached(self):
        from repro.apps.adapt import AdaptConfig
        from repro.harness.experiment import _run_key, _script_cache

        cfg = AdaptConfig(mesh_n=6, phases=2, solver_iters=3)
        run_app("adapt", "mpi", 2, cfg)
        key = _run_key("adapt", cfg, 2, "first-touch", None)
        assert key in _script_cache
        cached = _script_cache[key]
        run_app("adapt", "shmem", 2, cfg)  # same signature: reuses the script
        assert _script_cache[key] is cached


class TestSweep:
    def test_rows_cover_cross_product(self):
        rows = sweep("jacobi", models=("mpi", "sas"), nprocs_list=(1, 2), workload=SMALL)
        assert {(r.model, r.nprocs) for r in rows} == {
            ("mpi", 1), ("mpi", 2), ("sas", 1), ("sas", 2)
        }

    def test_speedup_normalised_to_own_p1(self):
        rows = sweep("jacobi", models=("mpi",), nprocs_list=(1, 2), workload=SMALL)
        by = {r.nprocs: r for r in rows}
        assert by[1].speedup == pytest.approx(1.0)
        assert by[2].speedup == pytest.approx(by[1].elapsed_ms / by[2].elapsed_ms)
        assert by[2].efficiency == pytest.approx(by[2].speedup / 2)

    def test_common_baseline_normalisation(self):
        rows = sweep(
            "jacobi",
            models=("mpi", "shmem"),
            nprocs_list=(1, 2),
            workload=SMALL,
            baseline_model="mpi",
        )
        shm1 = next(r for r in rows if r.model == "shmem" and r.nprocs == 1)
        mpi1 = next(r for r in rows if r.model == "mpi" and r.nprocs == 1)
        assert shm1.speedup == pytest.approx(mpi1.elapsed_ms / shm1.elapsed_ms)


class TestBreakdown:
    def test_rows_per_rank(self):
        res = run_app("jacobi", "mpi", 3, SMALL)
        rows = breakdown_rows(res)
        assert len(rows) == 3
        for row in rows:
            total = row["compute_pct"] + row["comm_pct"] + row["sync_pct"] + row["stall_pct"]
            assert total == pytest.approx(100.0)

    def test_aggregate_sums_to_100(self):
        res = run_app("jacobi", "shmem", 2, SMALL)
        agg = aggregate_breakdown(res)
        assert (
            agg["compute_pct"] + agg["comm_pct"] + agg["sync_pct"] + agg["stall_pct"]
        ) == pytest.approx(100.0)

    def test_comm_stats_keys(self):
        res = run_app("jacobi", "sas", 2, SMALL)
        stats = comm_stats_rows(res)
        assert stats["model"] == "sas"
        assert stats["messages"] == 0


class TestTables:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 2.5], [333, 0.001]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # all same width
        assert "333" in text and "0.001" in text

    def test_format_table_rejects_ragged(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_dict_table(self):
        text = format_dict_table([{"x": 1, "y": 2}], keys=["y", "x"])
        header = text.splitlines()[0]
        assert header.index("y") < header.index("x")

    def test_dict_table_empty(self):
        assert "(empty)" in format_dict_table([]) or format_dict_table([], title="t") == "t"


class TestFigures:
    def test_chart_contains_marks_and_legend(self):
        text = ascii_chart({"one": [(1, 1.0), (2, 2.0)], "two": [(1, 0.5)]})
        assert "legend" in text
        assert "*" in text and "o" in text

    def test_chart_handles_empty(self):
        assert ascii_chart({}, title="nothing") == "nothing"

    def test_chart_single_point(self):
        text = ascii_chart({"s": [(1.0, 5.0)]})
        assert "5.00" in text


class TestLoc:
    def test_count_skips_comments_docstrings_blanks(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text(
            '"""Module docstring\nspanning lines."""\n\n'
            "# comment\n"
            "def f():\n"
            '    """doc"""\n'
            "    return 1  # trailing comment counts as code line\n"
        )
        assert count_loc(f) == 2  # def + return, nothing else

    def test_effort_table_covers_nine_programs(self):
        rows = effort_table()
        assert {r["app"] for r in rows} == {"adapt", "nbody", "jacobi"}
        for r in rows:
            assert all(r[m] > 0 for m in ("mpi", "shmem", "sas"))


class TestCli:
    def test_describe(self, capsys):
        from repro.__main__ import main

        assert main(["describe", "-n", "8"]) == 0
        out = capsys.readouterr().out
        assert "8 CPUs" in out

    def test_micro_ladder_ordered(self, capsys):
        from repro.__main__ import main

        assert main(["micro", "-n", "16"]) == 0
        out = capsys.readouterr().out
        assert "L2 hit" in out and "dirty miss" in out

    def test_run_command(self, capsys):
        from repro.__main__ import main

        assert main(["run", "jacobi", "shmem", "-n", "2", "-s", "small"]) == 0
        out = capsys.readouterr().out
        assert "simulated time" in out

    def test_effort_command(self, capsys):
        from repro.__main__ import main

        assert main(["effort"]) == 0
        assert "adapt" in capsys.readouterr().out

    def test_sweep_command(self, capsys):
        from repro.__main__ import main

        assert main(["sweep", "jacobi", "-p", "1,2", "-s", "small"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
