"""Integration tests for the SHMEM runtime."""

import numpy as np
import pytest

from repro.machine import Machine, MachineConfig
from repro.models.registry import run_program

NPROC_SET = (1, 2, 3, 4, 5, 8, 13, 16)


def run_shmem(program, nprocs, *args, **kwargs):
    return run_program("shmem", program, nprocs, *args, **kwargs)


class TestSymmetricHeap:
    def test_salloc_returns_per_rank_copies(self):
        def program(ctx):
            arr = ctx.salloc("a", (4,), np.float64)
            arr.local(ctx.rank)[:] = ctx.rank
            yield from ctx.barrier_all()
            return float(arr.local(ctx.rank)[0])

        res = run_shmem(program, 4)
        assert res.rank_results == [0.0, 1.0, 2.0, 3.0]

    def test_asymmetric_alloc_rejected(self):
        def program(ctx):
            ctx.salloc("bad", (4 + ctx.rank,), np.float64)
            yield from ctx.barrier_all()

        with pytest.raises(ValueError, match="asymmetric"):
            run_shmem(program, 2)


class TestPutGet:
    @pytest.mark.parametrize("n", NPROC_SET)
    def test_all_to_all_puts(self, n):
        def program(ctx):
            buf = ctx.salloc("buf", (ctx.nprocs,), np.float64)
            for dst in range(ctx.nprocs):
                yield from ctx.put(buf, dst, np.array([float(ctx.rank)]), offset=ctx.rank)
            yield from ctx.barrier_all()
            return buf.local(ctx.rank).tolist()

        res = run_shmem(program, n)
        expected = [float(i) for i in range(n)]
        assert all(r == expected for r in res.rank_results)

    def test_put_snapshot_semantics(self):
        """The source buffer is reusable as soon as put returns."""

        def program(ctx):
            buf = ctx.salloc("buf", (1,), np.float64)
            if ctx.rank == 0:
                data = np.array([42.0])
                yield from ctx.put(buf, 1, data)
                data[0] = -1.0  # mutating after return must not corrupt
                yield from ctx.barrier_all()
                return None
            yield from ctx.barrier_all()
            return float(buf.local(1)[0])

        res = run_shmem(program, 2)
        assert res.rank_results[1] == 42.0

    def test_get_round_trip(self):
        def program(ctx):
            buf = ctx.salloc("buf", (8,), np.float64)
            buf.local(ctx.rank)[:] = ctx.rank * 10
            yield from ctx.barrier_all()
            got = yield from ctx.get(buf, (ctx.rank + 1) % ctx.nprocs)
            return float(got[0])

        res = run_shmem(program, 4)
        assert res.rank_results == [10.0, 20.0, 30.0, 0.0]

    def test_put_bounds_checked(self):
        def program(ctx):
            buf = ctx.salloc("buf", (4,), np.float64)
            yield from ctx.put(buf, 0, np.zeros(8), offset=0)
            yield from ctx.quiet()

        with pytest.raises(IndexError):
            run_shmem(program, 1)

    def test_get_bounds_checked(self):
        def program(ctx):
            buf = ctx.salloc("buf", (4,), np.float64)
            yield from ctx.get(buf, 0, offset=2, count=10)

        with pytest.raises(IndexError):
            run_shmem(program, 1)

    def test_quiet_waits_for_delivery(self):
        def program(ctx):
            buf = ctx.salloc("buf", (65536,), np.float64)
            if ctx.rank == 0:
                yield from ctx.put(buf, 1, np.ones(65536))
                yield from ctx.quiet()
                # after quiet, remote data must be visible
                assert buf.local(1)[65535] == 1.0
                yield from ctx.barrier_all()
            else:
                yield from ctx.barrier_all()
            return True

        res = run_shmem(program, 2)
        assert all(res.rank_results)

    def test_barrier_implies_quiet(self):
        def program(ctx):
            buf = ctx.salloc("buf", (1,), np.float64)
            if ctx.rank == 0:
                yield from ctx.put(buf, 1, np.array([7.0]))
            yield from ctx.barrier_all()
            return float(buf.local(1)[0])

        res = run_shmem(program, 2)
        assert res.rank_results == [7.0, 7.0]


class TestAtomicsAndLocks:
    @pytest.mark.parametrize("n", (2, 4, 8))
    def test_fetch_add_counts_every_rank(self, n):
        def program(ctx):
            ctr = ctx.salloc("ctr", (1,), np.int64)
            old = yield from ctx.atomic_fetch_add(ctr, 0, 0, 1)
            yield from ctx.barrier_all()
            return int(ctr.local(0)[0])

        res = run_shmem(program, n)
        assert all(v == n for v in res.rank_results)

    def test_fetch_add_returns_old_values(self):
        def program(ctx):
            ctr = ctx.salloc("ctr", (1,), np.int64)
            olds = []
            for _ in range(3):
                old = yield from ctx.atomic_fetch_add(ctr, 0, 0, 1)
                olds.append(old)
            return olds

        res = run_shmem(program, 1)
        assert res.rank_results[0] == [0, 1, 2]

    def test_cswap(self):
        def program(ctx):
            w = ctx.salloc("w", (1,), np.int64)
            first = yield from ctx.atomic_cswap(w, 0, 0, 0, ctx.rank + 100)
            yield from ctx.barrier_all()
            return (first, int(w.local(0)[0]))

        res = run_shmem(program, 4)
        winner_value = res.rank_results[0][1]
        assert all(v == winner_value for _, v in res.rank_results)
        assert sum(1 for old, _ in res.rank_results if old == 0) == 1

    def test_lock_mutual_exclusion(self):
        def program(ctx):
            acc = ctx.salloc("acc", (1,), np.float64)
            for _ in range(3):
                yield from ctx.set_lock("L")
                # unprotected read-modify-write made safe by the lock
                value = float(acc.local(0)[0])
                yield from ctx.compute(500.0)
                acc.local(0)[0] = value + 1
                yield from ctx.clear_lock("L")
            yield from ctx.barrier_all()
            return float(acc.local(0)[0])

        res = run_shmem(program, 4)
        assert all(v == 12.0 for v in res.rank_results)

    def test_clear_foreign_lock_rejected(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.set_lock("L")
            yield from ctx.barrier_all()
            if ctx.rank == 1:
                yield from ctx.clear_lock("L")

        with pytest.raises(RuntimeError, match="does not hold"):
            run_shmem(program, 2)


class TestCollectives:
    @pytest.mark.parametrize("n", NPROC_SET)
    def test_sum_to_all(self, n):
        def program(ctx):
            got = yield from ctx.sum_to_all(ctx.rank + 1)
            return got

        res = run_shmem(program, n)
        assert res.rank_results == [n * (n + 1) // 2] * n

    @pytest.mark.parametrize("n", NPROC_SET)
    def test_max_min_to_all(self, n):
        def program(ctx):
            hi = yield from ctx.max_to_all(ctx.rank)
            lo = yield from ctx.min_to_all(ctx.rank)
            return (hi, lo)

        res = run_shmem(program, n)
        assert res.rank_results == [(n - 1, 0)] * n

    @pytest.mark.parametrize("n", NPROC_SET)
    def test_collect(self, n):
        def program(ctx):
            got = yield from ctx.collect(ctx.rank * 5)
            return got

        res = run_shmem(program, n)
        assert res.rank_results == [[5 * i for i in range(n)]] * n

    @pytest.mark.parametrize("n", NPROC_SET)
    def test_broadcast(self, n):
        root = n // 2

        def program(ctx):
            got = yield from ctx.broadcast(
                "gold" if ctx.rank == root else None, root=root
            )
            return got

        res = run_shmem(program, n)
        assert res.rank_results == ["gold"] * n


class TestCosts:
    def test_put_much_cheaper_than_mpi_send(self):
        """The headline SHMEM property: low per-message software overhead."""

        def shmem_prog(ctx):
            buf = ctx.salloc("b", (16,), np.float64)
            for _ in range(50):
                yield from ctx.put(buf, 1 - ctx.rank, np.zeros(16))
            yield from ctx.quiet()
            yield from ctx.barrier_all()

        def mpi_prog(ctx):
            for i in range(50):
                if ctx.rank == 0:
                    yield from ctx.send(np.zeros(16), 1, tag=i)
                else:
                    yield from ctx.recv(0, tag=i)

        t_shmem = run_program("shmem", shmem_prog, 2).elapsed_ns
        t_mpi = run_program("mpi", mpi_prog, 2).elapsed_ns
        assert t_mpi > 3 * t_shmem

    def test_put_counters(self):
        def program(ctx):
            buf = ctx.salloc("b", (16,), np.float64)
            if ctx.rank == 0:
                yield from ctx.put(buf, 1, np.zeros(16))
            yield from ctx.barrier_all()

        res = run_shmem(program, 2)
        assert res.stats.per_cpu[0].puts == 1
        assert res.stats.per_cpu[0].put_bytes == 128
