"""The synthetic scenario subsystem: specs, generation, and model invariance.

Locks the acceptance contract of ``repro.workloads.synth``: a scenario
spec round-trips through JSON losslessly, regeneration from the same
(class, seed, knobs) is *byte*-identical, every scenario class runs
under all three programming models (and hybrid) with the checksum of
the sequential reference, the experiment cache keys scenario runs on
content hashes, and every stochastic workload generator in
``repro.workloads`` is bit-identical per seed.
"""

import json

import numpy as np
import pytest

from repro.harness.experiment import _script_cache, run_app
from repro.harness.scenariobench import run_scenario_bench
from repro.workloads import plummer_bodies, uniform_bodies
from repro.workloads.synth import (
    SCENARIO_CLASSES,
    ScenarioSpec,
    characterise,
    generate_scenario,
    load_spec,
    regenerate,
    spec_config,
)

CLASSES = sorted(SCENARIO_CLASSES)


def small_spec(cls, seed=11, **knobs):
    return generate_scenario(cls, seed=seed, mesh_n=6, phases=3, solver_iters=4, **knobs)


class TestSpecRoundTrip:
    @pytest.mark.parametrize("cls", CLASSES)
    def test_json_round_trip(self, cls):
        spec = small_spec(cls)
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.to_json() == spec.to_json()
        assert again.content_hash() == spec.content_hash()

    def test_disk_round_trip(self, tmp_path):
        spec = small_spec("multi_front")
        path = spec.save(tmp_path / spec.default_filename())
        assert load_spec(path) == spec

    def test_canonical_json(self):
        # canonical form: sorted keys, compact separators, trailing newline —
        # the byte-identity contract depends on this staying stable
        text = small_spec("hotspot_drift").to_json()
        assert text.endswith("\n")
        d = json.loads(text)
        assert text == json.dumps(d, sort_keys=True, separators=(",", ":")) + "\n"

    def test_bad_version_rejected(self):
        d = json.loads(small_spec("multi_front").to_json())
        d["version"] = 99
        with pytest.raises(ValueError, match="version"):
            ScenarioSpec.from_dict(d)


class TestGeneratorDeterminism:
    @pytest.mark.parametrize("cls", CLASSES)
    def test_same_seed_bit_identical(self, cls):
        a = generate_scenario(cls, seed=5, mesh_n=6, phases=3)
        b = generate_scenario(cls, seed=5, mesh_n=6, phases=3)
        assert a.to_json() == b.to_json()

    @pytest.mark.parametrize("cls", CLASSES)
    def test_regenerate_byte_identical(self, cls):
        # the acceptance lock: a spec regenerated from its own header
        # (class, seed, knobs, shape) reproduces the original bytes
        spec = small_spec(cls, seed=23, intensity=0.8)
        assert regenerate(spec).to_json() == spec.to_json()

    def test_different_seeds_differ(self):
        a = small_spec("multi_front", seed=1)
        b = small_spec("multi_front", seed=2)
        assert a.to_json() != b.to_json()
        assert a.content_hash() != b.content_hash()

    def test_knobs_change_the_scenario(self):
        a = small_spec("imbalance_wave", intensity=0.2)
        b = small_spec("imbalance_wave", intensity=1.0)
        assert a.content_hash() != b.content_hash()

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError, match="choose from"):
            generate_scenario("weather_front")

    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError, match="unknown knob"):
            generate_scenario("multi_front", wiggle=3.0)


class TestCrossModelInvariance:
    @pytest.mark.parametrize("cls", CLASSES)
    def test_all_models_match_reference(self, cls):
        from repro.apps.adapt import build_script

        spec = small_spec(cls)
        ref = build_script(spec_config(spec), 8).reference_checksum
        for model in ("mpi", "shmem", "sas", "hybrid"):
            result = run_app("scenario", model, 8, spec)
            for checksum in result.rank_results:
                assert checksum == pytest.approx(ref, abs=1e-9), (
                    f"{cls} under {model} diverged from the sequential reference"
                )

    def test_cache_keys_on_content_hash(self):
        a = small_spec("multi_front", seed=31)
        b = small_spec("multi_front", seed=32)
        run_app("scenario", "mpi", 4, a)
        run_app("scenario", "mpi", 4, b)
        keys = [k for k in _script_cache if k[0] == "scenario"]
        hashes = {k[1] for k in keys}
        assert a.content_hash() in hashes and b.content_hash() in hashes

    def test_spec_path_accepted(self, tmp_path):
        spec = small_spec("hotspot_drift")
        path = spec.save(tmp_path / spec.default_filename())
        by_path = run_app("scenario", "shmem", 4, str(path))
        by_spec = run_app("scenario", "shmem", 4, spec)
        assert by_path.elapsed_ns == by_spec.elapsed_ns
        assert by_path.rank_results == by_spec.rank_results

    def test_missing_workload_rejected(self):
        with pytest.raises(ValueError, match="scenarios generate"):
            run_app("scenario", "mpi", 4)


class TestInsights:
    def test_characterise_shape(self):
        spec = small_spec("refinement_storm")
        ins = characterise(spec, nprocs=4)
        assert ins["spec"]["content_hash"] == spec.content_hash()
        assert len(ins["per_phase"]) == spec.phases
        assert ins["comm_volume_bytes"] == ins["halo_bytes"] + ins["migration_bytes"]
        assert ins["adaptation_rate"] > 0
        assert ins["peak_imbalance"] >= 1.0
        json.dumps(ins)  # JSON-ready, no numpy scalars


class TestWorkloadSeedAudit:
    """Every stochastic generator is explicit-seed and per-seed identical."""

    def test_plummer_bit_identical(self):
        a = plummer_bodies(64, seed=9)
        b = plummer_bodies(64, seed=9)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_uniform_bit_identical(self):
        a = uniform_bodies(64, seed=9)
        b = uniform_bodies(64, seed=9)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_no_module_level_rng_consumed(self):
        # generators must not touch np.random global state
        np.random.seed(1234)
        before = np.random.get_state()[1][:10].copy()
        plummer_bodies(32, seed=3)
        uniform_bodies(32, seed=3)
        generate_scenario("multi_front", seed=3, mesh_n=6, phases=3)
        after = np.random.get_state()[1][:10]
        np.testing.assert_array_equal(before, after)


class TestScenarioBench:
    def test_smoke_record_and_flip_report(self):
        record = run_scenario_bench(
            classes=("multi_front", "imbalance_wave"),
            nprocs_list=(2, 4),
            intensities=(0.2, 1.0),
            mesh_n=6,
            phases=3,
            solver_iters=4,
            include_insights=False,
        )
        assert record["cells"] == 8
        assert len(record["rows"]) == 8 * 3
        assert set(record["ranking"]) == set(record["best"])
        for cell, ordered in record["ranking"].items():
            assert sorted(ordered) == sorted(record["models"])
            assert record["best"][cell] == ordered[0]
        for f in record["flips"]:
            assert f["axis"] in ("nprocs", "intensity", "scenario_class")
            assert f["best_changed"] == (f["from_ranking"][0] != f["to_ranking"][0])
        assert set(record["axes_with_flips"]) == {f["axis"] for f in record["flips"]}
        json.dumps(record)

    def test_deterministic(self):
        kwargs = dict(
            classes=("hotspot_drift",), nprocs_list=(2, 4), intensities=(0.5,),
            mesh_n=6, phases=3, solver_iters=4, include_insights=False,
        )
        assert run_scenario_bench(**kwargs) == run_scenario_bench(**kwargs)


class TestCli:
    def test_generate_describe_list_run(self, tmp_path, capsys, monkeypatch):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        rc = main([
            "scenarios", "generate", "imbalance_wave", "--seed", "4",
            "--mesh-n", "6", "--phases", "3", "-k", "intensity=0.6",
            "-o", "specs", "--no-insights",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        spec_path = out.split()[1]
        assert spec_path.endswith(".scenario.json")

        assert main(["scenarios", "describe", spec_path, "-n", "4"]) == 0
        assert "imbalance_wave" in capsys.readouterr().out

        assert main(["scenarios", "list", "--dir", "specs"]) == 0
        assert spec_path in capsys.readouterr().out

        assert main(["run", "mpi", "--scenario", spec_path, "-n", "4"]) == 0
        assert "scenario under mpi" in capsys.readouterr().out

    def test_run_rejects_unknown_names(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit, match="unknown app"):
            main(["run", "weather", "mpi"])
        with pytest.raises(SystemExit, match="unknown model"):
            main(["run", "adapt", "pvm"])
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["run", "mpi", "--scenario", "no_such_class"])

    def test_bench_scenarios_writes_report(self, tmp_path, capsys):
        from repro.__main__ import main

        out_path = tmp_path / "BENCH_SCENARIOS.json"
        rc = main([
            "bench-scenarios", "-p", "2,4", "--classes",
            "multi_front,hotspot_drift", "--intensities", "0.2,1.0",
            "--mesh-n", "6", "--phases", "3", "--solver-iters", "4",
            "--no-insights", "-o", str(out_path),
        ])
        assert rc == 0
        record = json.loads(out_path.read_text())
        assert "flips" in record and "axes_with_flips" in record
        assert record["cells"] == 8
