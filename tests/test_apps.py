"""Integration tests for the three applications under all three models.

The central correctness claim: every model implementation produces the
*bit-identical* solution checksum of the sequential reference, at every
processor count — communication and synchronisation differ, numerics don't.
"""

import numpy as np
import pytest

from repro.apps.adapt import ADAPT_PROGRAMS, AdaptConfig, build_script
from repro.apps.jacobi import JACOBI_PROGRAMS, JacobiConfig
from repro.apps.jacobi import reference_checksum as jacobi_ref
from repro.apps.nbody import NBODY_PROGRAMS, NBodyConfig
from repro.apps.nbody.common import cost_ranges, reference_checksum as nbody_ref
from repro.apps.nbody.tree import QuadTree
from repro.models.registry import run_program

MODELS = ("mpi", "shmem", "sas")

ADAPT_CFG = AdaptConfig(mesh_n=6, phases=3, solver_iters=4)
NBODY_CFG = NBodyConfig(n=128, steps=2)
JACOBI_CFG = JacobiConfig(nx=32, ny=32, iters=6)


@pytest.fixture(scope="module")
def adapt_scripts():
    return {n: build_script(ADAPT_CFG, n) for n in (1, 2, 3, 4, 8)}


class TestAdaptScript:
    def test_trajectory_grows_at_front(self, adapt_scripts):
        s = adapt_scripts[4]
        assert s.phases[-1].nels > s.phases[0].nels

    def test_ghost_lists_are_consistent(self, adapt_scripts):
        s = adapt_scripts[4]
        for plan in s.phases:
            owned = [set(r) for r in plan.rows]
            for (p, q), ids in plan.ghost_sends.items():
                assert p != q
                assert set(ids) <= owned[p]  # senders own what they send

    def test_rows_partition_vertices(self, adapt_scripts):
        s = adapt_scripts[4]
        for plan in s.phases:
            seen = set()
            for r in plan.rows:
                assert not (seen & set(r))
                seen.update(r)

    def test_migration_only_when_rebalanced(self, adapt_scripts):
        s = adapt_scripts[4]
        for plan in s.phases:
            if not plan.rebalanced and plan.index > 0:
                assert not plan.migration_elems

    def test_imbalance_controlled(self, adapt_scripts):
        s = adapt_scripts[8]
        for before, after in s.imbalance_trace:
            assert after <= max(before, ADAPT_CFG.imbalance_threshold) + 1e-9

    def test_script_deterministic(self):
        a = build_script(ADAPT_CFG, 3)
        b = build_script(ADAPT_CFG, 3)
        assert a.reference_checksum == b.reference_checksum
        assert a.phases[-1].nels == b.phases[-1].nels


class TestAdaptCrossModel:
    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("nprocs", (1, 2, 3, 4, 8))
    def test_checksum_matches_reference(self, adapt_scripts, model, nprocs):
        script = adapt_scripts[nprocs]
        res = run_program(model, ADAPT_PROGRAMS[model], nprocs, script)
        for rank in range(nprocs):
            assert res.rank_results[rank] == pytest.approx(
                script.reference_checksum, abs=1e-9
            )

    def test_shmem_cheaper_than_mpi_comm(self, adapt_scripts):
        script = adapt_scripts[4]
        mpi = run_program("mpi", ADAPT_PROGRAMS["mpi"], 4, script)
        shm = run_program("shmem", ADAPT_PROGRAMS["shmem"], 4, script)
        assert shm.stats.total("comm_ns") < mpi.stats.total("comm_ns")

    def test_sas_time_is_stall_not_comm(self, adapt_scripts):
        script = adapt_scripts[4]
        res = run_program("sas", ADAPT_PROGRAMS["sas"], 4, script)
        assert res.stats.total("stall_ns") > 0
        assert res.stats.total("msgs_sent") == 0

    def test_phase_timers_populated(self, adapt_scripts):
        script = adapt_scripts[2]
        res = run_program("mpi", ADAPT_PROGRAMS["mpi"], 2, script)
        assert {"adapt", "balance", "solve"} <= set(res.phase_ns)


class TestNBody:
    def test_tree_canonical_under_permutation(self):
        pos, _, mass = __import__("repro.workloads.plummer", fromlist=["plummer_bodies"]).plummer_bodies(64, seed=2)
        t1 = QuadTree()
        t1.build(pos, mass)
        # build with identical data must give identical COM values
        t2 = QuadTree()
        t2.build(pos.copy(), mass.copy())
        assert t1.mass == t2.mass
        assert t1.comx == t2.comx

    def test_tree_accel_matches_direct_sum_at_theta_zero(self):
        rng = np.random.default_rng(0)
        pos = rng.uniform(0.2, 0.8, (20, 2))
        mass = np.full(20, 1.0 / 20)
        tree = QuadTree()
        tree.build(pos, mass)
        ax, ay, _ = tree.accel(0, theta=0.0, eps=1e-3)
        # direct sum
        dx = pos[1:, 0] - pos[0, 0]
        dy = pos[1:, 1] - pos[0, 1]
        r2 = dx * dx + dy * dy + 1e-6
        w = mass[1:] / (r2 * np.sqrt(r2))
        assert ax == pytest.approx(float((w * dx).sum()), rel=1e-9)
        assert ay == pytest.approx(float((w * dy).sum()), rel=1e-9)

    def test_coincident_bodies_do_not_hang(self):
        pos = np.array([[0.5, 0.5], [0.5, 0.5], [0.5, 0.5]])
        mass = np.ones(3)
        tree = QuadTree()
        tree.build(pos, mass)
        ax, ay, _ = tree.accel(0)
        assert np.isfinite(ax) and np.isfinite(ay)

    def test_cost_ranges_cover(self):
        costs = np.array([10.0, 1, 1, 1, 1, 1, 1, 10])
        ranges = cost_ranges(costs, 3)
        assert ranges[0][0] == 0 and ranges[-1][1] == 8
        for (l1, h1), (l2, h2) in zip(ranges, ranges[1:]):
            assert h1 == l2

    def test_cost_ranges_balance_cost(self):
        costs = np.concatenate([np.full(10, 100.0), np.full(90, 1.0)])
        ranges = cost_ranges(costs, 2)
        # the heavy head should not all land on rank 0 together with the tail
        assert ranges[0][1] < 50

    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("nprocs", (1, 3, 4))
    def test_checksum_matches_reference(self, model, nprocs):
        ref = nbody_ref(NBODY_CFG)
        res = run_program(model, NBODY_PROGRAMS[model], nprocs, NBODY_CFG)
        assert res.rank_results[0] == pytest.approx(ref, abs=1e-9)

    def test_plummer_cost_imbalanced_without_costzones(self):
        """Central bodies cost more — the adaptivity the app must handle."""
        cfg = NBodyConfig(n=256, steps=1)
        from repro.apps.nbody.common import initial_bodies, step_bodies

        pos, vel, mass = initial_bodies(cfg)
        _, _, counts, _, _ = step_bodies(cfg, pos, vel, mass, 0, cfg.n)
        assert counts.max() > 1.3 * counts.mean()
        r = np.hypot(pos[:, 0] - 0.5, pos[:, 1] - 0.5)
        assert counts[r < 0.1].mean() > 1.5 * counts[r > 0.3].mean()


class TestJacobi:
    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("nprocs", (1, 2, 4, 5, 8))
    def test_checksum_matches_reference(self, model, nprocs):
        ref = jacobi_ref(JACOBI_CFG)
        res = run_program(model, JACOBI_PROGRAMS[model], nprocs, JACOBI_CFG)
        assert res.rank_results[0] == pytest.approx(ref, abs=1e-9)

    def test_models_closer_on_regular_than_adaptive(self, adapt_scripts):
        """R-F5's point: the model gap opens on the adaptive app."""
        jac = {
            m: run_program(m, JACOBI_PROGRAMS[m], 8, JacobiConfig(nx=96, ny=96, iters=10)).elapsed_ns
            for m in ("mpi", "shmem")
        }
        script = adapt_scripts[8]
        ada = {
            m: run_program(m, ADAPT_PROGRAMS[m], 8, script).elapsed_ns
            for m in ("mpi", "shmem")
        }
        gap_regular = max(jac.values()) / min(jac.values())
        gap_adaptive = max(ada.values()) / min(ada.values())
        assert gap_adaptive > gap_regular


class TestAdapt3D:
    """The 3-D application: same model programs, tetrahedral trajectory."""

    @pytest.fixture(scope="class")
    def script3d(self):
        from repro.apps.adapt3d import Adapt3DConfig, build_script3d
        from repro.workloads.shock3d import MovingShock3D

        cfg = Adapt3DConfig(
            mesh_n=2,
            phases=3,
            solver_iters=4,
            shock=MovingShock3D(x0=0.25, speed=0.25, band=0.13, coarsen_distance=0.3),
        )
        return {n: build_script3d(cfg, n) for n in (1, 2, 4, 8)}

    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("nprocs", (1, 2, 4, 8))
    def test_checksum_matches_reference(self, script3d, model, nprocs):
        script = script3d[nprocs]
        res = run_program(model, ADAPT_PROGRAMS[model], nprocs, script)
        for rank in range(nprocs):
            assert res.rank_results[rank] == pytest.approx(
                script.reference_checksum, abs=1e-9
            )

    def test_trajectory_is_tetrahedral_scale(self, script3d):
        s = script3d[4]
        assert s.phases[0].nels == 6 * 8  # Kuhn start
        assert s.phases[-1].nels > s.phases[0].nels

    def test_harness_runs_adapt3d(self):
        from repro.harness import run_app

        res = run_app("adapt3d", "shmem", 4)
        assert res.elapsed_ms > 0


class TestScript3DInvariants:
    """Trajectory invariants for the 3-D builder (mirrors TestAdaptScript)."""

    @pytest.fixture(scope="class")
    def s3(self):
        from repro.apps.adapt3d import Adapt3DConfig, build_script3d
        from repro.workloads.shock3d import MovingShock3D

        cfg = Adapt3DConfig(
            mesh_n=3,
            phases=3,
            solver_iters=4,
            shock=MovingShock3D(x0=0.2, speed=0.18, band=0.07, coarsen_distance=0.22),
        )
        return build_script3d(cfg, 6)

    def test_ghost_senders_own_what_they_send(self, s3):
        for plan in s3.phases:
            owned = [set(r) for r in plan.rows]
            for (p, q), ids in plan.ghost_sends.items():
                assert p != q
                assert set(ids) <= owned[p]

    def test_rows_partition_vertices(self, s3):
        for plan in s3.phases:
            seen = set()
            for r in plan.rows:
                assert not (seen & set(r))
                seen.update(r)

    def test_migration_verts_cover_moved_elements(self, s3):
        """Every moved element's vertices travel with it."""
        # rebuild the meshes is overkill; check internal consistency instead:
        for plan in s3.phases:
            for pair, elems in plan.migration_elems.items():
                assert pair in plan.migration_verts
                # a cluster of tets shares vertices, but any non-empty move
                # carries at least one tet's worth of them
                assert len(plan.migration_verts[pair]) >= 4

    def test_interp_triples_ordered(self, s3):
        """Endpoints precede their midpoint (interpolation order safety)."""
        for plan in s3.phases:
            for mid, a, b in plan.interp_triples:
                assert a < mid and b < mid

    def test_imbalance_controlled(self, s3):
        for before, after in s3.imbalance_trace:
            assert after <= max(before, 1.25) + 1e-9
