"""Unit + property tests for the machine configuration and topology."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.config import MachineConfig
from repro.machine.topology import Topology


class TestConfig:
    def test_defaults_are_valid(self):
        cfg = MachineConfig()
        assert cfg.nnodes == 4
        assert cfg.nrouters == 2
        assert cfg.cycle_ns == pytest.approx(4.0)

    def test_node_router_mapping(self):
        cfg = MachineConfig(nprocs=16)
        assert cfg.nnodes == 8
        assert cfg.nrouters == 4
        assert cfg.node_of_cpu(0) == 0
        assert cfg.node_of_cpu(15) == 7
        assert cfg.router_of_node(7) == 3

    def test_odd_nprocs_rounds_up_nodes(self):
        cfg = MachineConfig(nprocs=5)
        assert cfg.nnodes == 3
        assert cfg.nrouters == 2

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(nprocs=0)
        with pytest.raises(ValueError):
            MachineConfig(line_bytes=100)
        with pytest.raises(ValueError):
            MachineConfig(page_bytes=1000)

    def test_cpu_range_checked(self):
        cfg = MachineConfig(nprocs=4)
        with pytest.raises(ValueError):
            cfg.node_of_cpu(4)
        with pytest.raises(ValueError):
            cfg.router_of_node(99)

    def test_with_override(self):
        cfg = MachineConfig().with_(nprocs=32)
        assert cfg.nprocs == 32
        assert cfg.clock_mhz == MachineConfig().clock_mhz

    def test_l2_sets(self):
        cfg = MachineConfig()
        assert cfg.l2_sets * cfg.l2_assoc * cfg.line_bytes == cfg.l2_bytes


class TestTopology:
    def test_single_node_no_links_needed(self):
        topo = Topology(MachineConfig(nprocs=2))
        assert topo.route(0, 0) == ()

    def test_route_endpoints(self):
        cfg = MachineConfig(nprocs=32)
        topo = Topology(cfg)
        for src in range(cfg.nnodes):
            for dst in range(cfg.nnodes):
                if src == dst:
                    assert topo.route(src, dst) == ()
                    continue
                links = [topo.links[i] for i in topo.route(src, dst)]
                assert links[0].kind == "hub-out" and links[0].src == src
                assert links[-1].kind == "hub-in" and links[-1].dst == dst
                # path is connected
                cur = cfg.router_of_node(src)
                for link in links[1:-1]:
                    assert link.src == cur
                    cur = link.dst
                assert cur == cfg.router_of_node(dst)

    def test_route_hops_match_hamming_distance(self):
        cfg = MachineConfig(nprocs=64)
        topo = Topology(cfg)
        for a in range(cfg.nnodes):
            for b in range(cfg.nnodes):
                ra, rb = cfg.router_of_node(a), cfg.router_of_node(b)
                assert topo.router_hops(a, b) == bin(ra ^ rb).count("1")

    def test_ranks_strictly_increase_along_route(self):
        """The deadlock-freedom invariant: link ranks ascend along any path."""
        cfg = MachineConfig(nprocs=64)
        topo = Topology(cfg)
        for src in range(cfg.nnodes):
            for dst in range(cfg.nnodes):
                ranks = [topo.links[i].rank for i in topo.route(src, dst)]
                assert ranks == sorted(ranks)
                assert len(set(ranks)) == len(ranks)

    def test_same_router_nodes_skip_cube_links(self):
        cfg = MachineConfig(nprocs=8)  # nodes 0,1 share router 0
        topo = Topology(cfg)
        kinds = [topo.links[i].kind for i in topo.route(0, 1)]
        assert kinds == ["hub-out", "hub-in"]

    def test_route_caching_returns_same_tuple(self):
        topo = Topology(MachineConfig(nprocs=16))
        assert topo.route(0, 3) is topo.route(0, 3)

    @settings(max_examples=50, deadline=None)
    @given(nprocs=st.integers(min_value=1, max_value=128))
    def test_every_pair_routable(self, nprocs):
        cfg = MachineConfig(nprocs=nprocs)
        topo = Topology(cfg)
        # spot-check the extremes rather than all O(n^2) pairs
        pairs = [(0, cfg.nnodes - 1), (cfg.nnodes - 1, 0), (0, 0)]
        for a, b in pairs:
            route = topo.route(a, b)
            if a == b:
                assert route == ()
            else:
                assert len(route) >= 2

    def test_describe_mentions_counts(self):
        topo = Topology(MachineConfig(nprocs=8))
        text = topo.describe()
        assert "8 CPUs" in text and "4 node" in text
