"""Unit + property tests for the machine configuration and topology."""

import pytest

from repro.machine.config import MachineConfig
from repro.machine.topology import Topology


class TestConfig:
    def test_defaults_are_valid(self):
        cfg = MachineConfig()
        assert cfg.nnodes == 4
        assert cfg.nrouters == 2
        assert cfg.cycle_ns == pytest.approx(4.0)

    def test_node_router_mapping(self):
        cfg = MachineConfig(nprocs=16)
        assert cfg.nnodes == 8
        assert cfg.nrouters == 4
        assert cfg.node_of_cpu(0) == 0
        assert cfg.node_of_cpu(15) == 7
        assert cfg.router_of_node(7) == 3

    def test_odd_nprocs_rounds_up_nodes(self):
        cfg = MachineConfig(nprocs=5)
        assert cfg.nnodes == 3
        assert cfg.nrouters == 2

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(nprocs=0)
        with pytest.raises(ValueError):
            MachineConfig(line_bytes=100)
        with pytest.raises(ValueError):
            MachineConfig(page_bytes=1000)

    def test_cpu_range_checked(self):
        cfg = MachineConfig(nprocs=4)
        with pytest.raises(ValueError):
            cfg.node_of_cpu(4)
        with pytest.raises(ValueError):
            cfg.router_of_node(99)

    def test_with_override(self):
        cfg = MachineConfig().with_(nprocs=32)
        assert cfg.nprocs == 32
        assert cfg.clock_mhz == MachineConfig().clock_mhz

    def test_l2_sets(self):
        cfg = MachineConfig()
        assert cfg.l2_sets * cfg.l2_assoc * cfg.line_bytes == cfg.l2_bytes


class TestTopology:
    def test_single_node_no_links_needed(self):
        topo = Topology(MachineConfig(nprocs=2))
        assert topo.route(0, 0) == ()

    # NOTE: route endpoint/hop-count/link-rank properties moved to
    # tests/test_topology_highp.py, which checks them exhaustively for
    # every node pair at every power-of-two P up to 128.

    def test_same_router_nodes_skip_cube_links(self):
        cfg = MachineConfig(nprocs=8)  # nodes 0,1 share router 0
        topo = Topology(cfg)
        kinds = [topo.links[i].kind for i in topo.route(0, 1)]
        assert kinds == ["hub-out", "hub-in"]

    def test_route_caching_returns_same_tuple(self):
        topo = Topology(MachineConfig(nprocs=16))
        assert topo.route(0, 3) is topo.route(0, 3)

    def test_describe_mentions_counts(self):
        topo = Topology(MachineConfig(nprocs=8))
        text = topo.describe()
        assert "8 CPUs" in text and "4 node" in text
