"""Unit tests for the contended interconnect."""

import pytest

from repro.machine import Machine, MachineConfig


def run_transfers(machine, transfers):
    """Spawn concurrent transfers; returns completion times in spawn order."""
    done = []

    def mover(src, dst, nbytes, start):
        from repro.sim.engine import Delay

        yield Delay(start)
        yield from machine.network.transfer(src, dst, nbytes)
        done.append(machine.engine.now)

    for spec in transfers:
        machine.engine.spawn(mover(*spec))
    machine.engine.run()
    return done


def test_uncontended_matches_pipe_ns():
    m = Machine(MachineConfig(nprocs=16))
    times = run_transfers(m, [(0, 5, 4096, 0)])
    assert times[0] == pytest.approx(m.network.pipe_ns(0, 5, 4096))


def test_intra_node_transfer_uses_memory_copy():
    m = Machine(MachineConfig(nprocs=4))
    times = run_transfers(m, [(1, 1, 1024, 0)])
    assert times[0] == pytest.approx(1024 / m.config.intra_node_copy_bpns)


def test_more_hops_cost_more():
    m = Machine(MachineConfig(nprocs=32))
    near = m.network.pipe_ns(0, 1, 1024)   # same router
    far = m.network.pipe_ns(0, 15, 1024)   # across the hypercube
    assert far > near


def test_contention_serialises_shared_link():
    m = Machine(MachineConfig(nprocs=16))
    # two transfers from node 0 at t=0 share node 0's hub-out link
    times = sorted(run_transfers(m, [(0, 4, 8192, 0), (0, 5, 8192, 0)]))
    solo = m.network.pipe_ns(0, 4, 8192)
    assert times[0] == pytest.approx(solo)
    assert times[1] > solo * 1.5


def test_disjoint_paths_do_not_interfere():
    m = Machine(MachineConfig(nprocs=16))
    solo_a = m.network.pipe_ns(0, 1, 8192)
    times = run_transfers(m, [(0, 1, 8192, 0), (4, 5, 8192, 0)])
    assert times[0] == pytest.approx(solo_a)
    assert times[1] == pytest.approx(m.network.pipe_ns(4, 5, 8192))


def test_negative_size_rejected():
    m = Machine(MachineConfig(nprocs=4))

    def bad():
        yield from m.network.transfer(0, 1, -1)

    m.engine.spawn(bad())
    with pytest.raises(ValueError):
        m.engine.run()


def test_traffic_statistics():
    m = Machine(MachineConfig(nprocs=8))
    run_transfers(m, [(0, 2, 1000, 0), (1, 1, 500, 0)])
    assert m.stats.network_messages == 2
    assert m.stats.network_bytes == 1000  # intra-node bytes don't hit links


def test_many_concurrent_transfers_complete():
    """Stress the no-deadlock guarantee: all-to-all burst on 32 CPUs."""
    m = Machine(MachineConfig(nprocs=32))
    specs = []
    n = m.config.nnodes
    for s in range(n):
        for d in range(n):
            if s != d:
                specs.append((s, d, 2048, 0))
    times = run_transfers(m, specs)
    assert len(times) == n * (n - 1)


def test_link_utilisations_shape():
    m = Machine(MachineConfig(nprocs=8))
    run_transfers(m, [(0, 3, 65536, 0)])
    utils = m.network.link_utilisations()
    assert len(utils) == len(m.topology.links)
    assert any(u > 0 for u in utils)
    assert all(0 <= u <= 1.0 + 1e-9 for u in utils)
