"""Tests for MPI communicators (comm_split) and the hybrid model."""

import numpy as np
import pytest

from repro.apps.jacobi import JacobiConfig, reference_checksum
from repro.apps.jacobi.hybrid_app import jacobi_hybrid
from repro.models.registry import run_program


class TestCommSplit:
    def test_groups_by_color(self):
        def program(ctx):
            comm = yield from ctx.comm_split(ctx.rank % 2)
            return (comm.rank, comm.nprocs, comm.members)

        res = run_program("mpi", program, 6)
        for r, (lr, n, members) in enumerate(res.rank_results):
            assert n == 3
            assert members == tuple(range(r % 2, 6, 2))
            assert members[lr] == r

    def test_key_orders_group(self):
        def program(ctx):
            comm = yield from ctx.comm_split(0, key=-ctx.rank)
            return comm.rank

        res = run_program("mpi", program, 4)
        assert res.rank_results == [3, 2, 1, 0]  # reversed order

    def test_color_none_opts_out(self):
        def program(ctx):
            comm = yield from ctx.comm_split(0 if ctx.rank < 2 else None)
            if ctx.rank < 2:
                total = yield from comm.allreduce(1)
                return total
            assert comm is None
            return -1

        res = run_program("mpi", program, 4)
        assert res.rank_results == [2, 2, -1, -1]

    def test_group_point_to_point_local_ranks(self):
        def program(ctx):
            comm = yield from ctx.comm_split(ctx.rank // 2)
            # exchange within the pair using local ranks 0/1
            got = yield from comm.sendrecv(ctx.rank, 1 - comm.rank, 1 - comm.rank)
            return got

        res = run_program("mpi", program, 6)
        assert res.rank_results == [1, 0, 3, 2, 5, 4]

    def test_group_collectives(self):
        def program(ctx):
            comm = yield from ctx.comm_split(ctx.rank % 2)
            s = yield from comm.allreduce(ctx.rank)
            g = yield from comm.allgather(ctx.rank)
            b = yield from comm.bcast(ctx.rank if comm.rank == 0 else None, root=0)
            yield from comm.barrier()
            return (s, g, b)

        res = run_program("mpi", program, 8)
        for r, (s, g, b) in enumerate(res.rank_results):
            group = list(range(r % 2, 8, 2))
            assert s == sum(group)
            assert g == group
            assert b == group[0]

    def test_traffic_isolated_between_communicators(self):
        """Same user tag on two communicators must not cross-match."""

        def program(ctx):
            comm = yield from ctx.comm_split(ctx.rank % 2)
            # every group does a ring with the SAME tag concurrently
            got = yield from comm.sendrecv(
                ("grp", ctx.rank), (comm.rank + 1) % comm.nprocs,
                (comm.rank - 1) % comm.nprocs, sendtag=7, recvtag=7,
            )
            return got

        res = run_program("mpi", program, 8)
        for r, (label, src) in enumerate(res.rank_results):
            assert label == "grp"
            assert src % 2 == r % 2  # never received from the other group

    def test_tag_out_of_range_rejected(self):
        def program(ctx):
            comm = yield from ctx.comm_split(0)
            yield from comm.send(1, 0, tag=1 << 21)

        with pytest.raises(ValueError, match="tags"):
            run_program("mpi", program, 2)

    def test_nested_splits_get_distinct_ids(self):
        def program(ctx):
            a = yield from ctx.comm_split(0)
            b = yield from ctx.comm_split(0)
            return (a.comm_id, b.comm_id)

        res = run_program("mpi", program, 2)
        ids = res.rank_results[0]
        assert ids[0] != ids[1]
        assert all(r == ids for r in res.rank_results)


class TestHybridModel:
    def test_geometry(self):
        def program(ctx):
            yield from ctx.compute(0)
            return (ctx.node, ctx.node_rank, ctx.node_size, ctx.is_leader, ctx.nnodes)

        res = run_program("hybrid", program, 6)
        assert res.rank_results[0] == (0, 0, 2, True, 3)
        assert res.rank_results[1] == (0, 1, 2, False, 3)
        assert res.rank_results[5] == (2, 1, 2, False, 3)

    def test_odd_rank_count_partial_node(self):
        def program(ctx):
            yield from ctx.compute(0)
            return (ctx.node, ctx.node_size)

        res = run_program("hybrid", program, 5)
        assert res.rank_results[4] == (2, 1)  # the last node has one CPU

    def test_leaders_comm(self):
        def program(ctx):
            leaders = yield from ctx.setup_leaders()
            if ctx.is_leader:
                total = yield from leaders.allreduce(ctx.node)
                return total
            return None

        res = run_program("hybrid", program, 8)
        assert [r for r in res.rank_results if r is not None] == [6, 6, 6, 6]

    def test_node_barrier_scopes_to_node(self):
        def program(ctx):
            # node 0 computes long; node 1 short — node barriers must not
            # couple the two nodes
            yield from ctx.compute(10_000.0 if ctx.node == 0 else 10.0)
            yield from ctx.node_barrier()
            return ctx.now

        res = run_program("hybrid", program, 4)
        assert max(res.rank_results[2:]) < 5_000.0  # node 1 finished early

    def test_global_barrier_couples_everyone(self):
        def program(ctx):
            yield from ctx.setup_leaders()
            yield from ctx.compute(1000.0 * ctx.rank)
            yield from ctx.global_barrier()
            return ctx.now

        res = run_program("hybrid", program, 6)
        assert all(t >= 5000.0 for t in res.rank_results)

    @pytest.mark.parametrize("n", (1, 2, 3, 4, 6, 8))
    def test_hybrid_jacobi_matches_reference(self, n):
        cfg = JacobiConfig(nx=32, ny=32, iters=5)
        ref = reference_checksum(cfg)
        res = run_program("hybrid", jacobi_hybrid, n, cfg)
        for rank in range(n):
            assert res.rank_results[rank] == pytest.approx(ref, abs=1e-9)

    def test_hybrid_sends_fewer_messages_than_mpi(self):
        from repro.apps.jacobi import JACOBI_PROGRAMS

        cfg = JacobiConfig(nx=64, ny=64, iters=8)
        hyb = run_program("hybrid", jacobi_hybrid, 8, cfg)
        mpi = run_program("mpi", JACOBI_PROGRAMS["mpi"], 8, cfg)
        assert hyb.stats.total("msgs_sent") < mpi.stats.total("msgs_sent")

    def test_stats_shared_across_sub_contexts(self):
        def program(ctx):
            x = ctx.shalloc("x", (64,), np.float64)
            yield from ctx.stouch(x, write=True)
            yield from ctx.mpi.barrier()
            return True

        res = run_program("hybrid", program, 2)
        # both the SAS stores and the MPI sync landed on the same counters
        assert res.stats.per_cpu[0].stores > 0
        assert res.stats.per_cpu[0].sync_ns > 0
